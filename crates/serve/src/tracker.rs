//! Bounded per-flow state over a packet stream.
//!
//! The tracker owns one [`IncrementalFlowpic`] per live flow and decides
//! when each flow's picture is ready to classify:
//!
//! * **window completion** — the first packet whose flow-relative
//!   timestamp reaches the paper's observation window (15 s by default)
//!   proves the window has fully elapsed, so the picture is final (the
//!   batch builder would skip that packet and everything after it).
//! * **early termination** — flows still live when the stream drains are
//!   flushed and classified on whatever they accumulated, mirroring the
//!   paper's treatment of flows shorter than the window.
//!
//! Memory stays bounded by two eviction rules, both observable as
//! `flow_evicted` telemetry: flows idle longer than `idle_timeout_s` are
//! dropped (the flow is presumed dead; if it resumes it restarts from an
//! empty picture), and when a new flow would exceed `max_flows` the
//! least-recently-active flow is dropped to make room. Evicted flows are
//! *not* classified — eviction is memory reclamation, not completion —
//! and the telemetry reason says so: a flow that never reached the
//! classifier is evicted with an `-unclassified` reason suffix
//! (`"idle-unclassified"` / `"cap-unclassified"`), so open-world
//! unknown-rate math can separate "the model rejected it" from "the
//! tracker never finished it" without double counting. The bare
//! `"idle"` / `"cap"` spellings are reserved for the residue of a flow
//! id that *was* classified — unreachable under the current invariant
//! (classified ids are never re-tracked within the done horizon), but
//! kept distinct in the vocabulary so the JSONL schema never reuses a
//! reason string with a changed meaning.
//! All eviction choices order by `(last_seen, flow_id)`, so the tracker
//! is deterministic for a given trace.
//!
//! The classified-flow memory is bounded too: flow ids of classified
//! flows are remembered in two stream-time generations rotated every
//! `done_horizon_s` seconds, so a late packet is guaranteed to be
//! ignored for at least `done_horizon_s` (and at most twice that) after
//! its flow was classified. Beyond the horizon the id may be observed
//! again as a brand-new flow — mirroring 5-tuple reuse on a real link —
//! which keeps the set's size proportional to the classification rate
//! within one horizon rather than to the lifetime flow count. Rotation
//! is driven purely by packet timestamps, so it is deterministic for a
//! given trace.

use std::collections::HashMap;

use flowpic::{FlowpicConfig, IncrementalFlowpic, Normalization};
use tcbench::telemetry::{InferEvent, InferObserver};

use crate::replay::PacketRecord;

/// Flow-tracking knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Flowpic geometry (resolution, window, ACK handling).
    pub flowpic: FlowpicConfig,
    /// Normalization applied when a picture becomes a model input.
    pub norm: Normalization,
    /// Seconds of stream-time silence after which a flow is evicted.
    pub idle_timeout_s: f64,
    /// Hard cap on simultaneously tracked flows.
    pub max_flows: usize,
    /// How long (stream-time seconds) a classified flow id is guaranteed
    /// to keep ignoring late packets. Ids are kept in two generations
    /// rotated every horizon, so memory for classified flows is bounded
    /// by two horizons' worth of classifications instead of growing with
    /// the lifetime flow count. Must be positive; `f64::INFINITY`
    /// restores the old remember-forever behavior.
    pub done_horizon_s: f64,
}

impl Default for TrackerConfig {
    fn default() -> TrackerConfig {
        TrackerConfig {
            flowpic: FlowpicConfig::mini(),
            norm: Normalization::LogMax,
            idle_timeout_s: 30.0,
            max_flows: 10_000,
            done_horizon_s: 120.0,
        }
    }
}

/// A flow whose picture is final and ready for classification.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedFlow {
    /// The flow's identifier.
    pub flow_id: u64,
    /// The normalized, flattened flowpic — the model input.
    pub input: Vec<f32>,
    /// Packets the flow contributed to the picture.
    pub pkts: usize,
    /// Stream time at which the flow completed.
    pub completed_at: f64,
    /// Mean size (bytes) of the in-window packets — the drift monitor's
    /// size feature, matching `tcbench::refdist::flow_window_stats` on
    /// the same packets. `0.0` for an empty picture.
    pub mean_pkt_size: f64,
    /// Mean inter-arrival gap (flow-time seconds) of the in-window
    /// packets; `0.0` with fewer than two packets.
    pub mean_iat_s: f64,
}

struct TrackedFlow {
    pic: IncrementalFlowpic,
    last_seen: f64,
    /// Drift-feature accumulators over every pushed (in-window) packet.
    n_pkts: usize,
    sum_size: f64,
    first_pkt_ts: f64,
    last_pkt_ts: f64,
}

impl TrackedFlow {
    /// `(mean_pkt_size, mean_iat_s)` over the packets pushed so far.
    fn feature_stats(&self) -> (f64, f64) {
        if self.n_pkts == 0 {
            return (0.0, 0.0);
        }
        let mean_size = self.sum_size / self.n_pkts as f64;
        let mean_iat = if self.n_pkts >= 2 {
            (self.last_pkt_ts - self.first_pkt_ts) / (self.n_pkts - 1) as f64
        } else {
            0.0
        };
        (mean_size, mean_iat)
    }
}

/// Ingests timestamped packet records and emits completed flows.
pub struct FlowTracker {
    config: TrackerConfig,
    flows: HashMap<u64, TrackedFlow>,
    /// Classified flows of the current horizon generation; their late
    /// packets are ignored.
    done_cur: std::collections::HashSet<u64>,
    /// The previous generation, still consulted but no longer grown.
    done_prev: std::collections::HashSet<u64>,
    /// Stream time at which `done_cur` started accumulating.
    done_gen_start: f64,
    evicted: usize,
    /// Telemetry shard tag stamped on this tracker's `flow_evicted`
    /// events (0 outside the sharded dataplane).
    shard: usize,
}

impl FlowTracker {
    /// An empty tracker.
    pub fn new(config: TrackerConfig) -> FlowTracker {
        assert!(config.max_flows >= 1, "max_flows must be at least 1");
        assert!(
            config.done_horizon_s > 0.0,
            "done_horizon_s must be positive (use f64::INFINITY to remember forever)"
        );
        FlowTracker {
            config,
            flows: HashMap::new(),
            done_cur: std::collections::HashSet::new(),
            done_prev: std::collections::HashSet::new(),
            done_gen_start: 0.0,
            evicted: 0,
            shard: 0,
        }
    }

    /// Tags this tracker's telemetry with a dataplane shard index.
    pub fn set_shard(&mut self, shard: usize) {
        self.shard = shard;
    }

    /// Flows currently holding per-flow state.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The current tracking configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Live-reconfigures the idle timeout (stream-time seconds). Applies
    /// from the next packet on: flows already idle longer than the new
    /// timeout are evicted when stream time next advances.
    pub fn set_idle_timeout_s(&mut self, idle_timeout_s: f64) {
        self.config.idle_timeout_s = idle_timeout_s;
    }

    /// Live-reconfigures the tracked-flow cap, evicting down to the new
    /// cap immediately (least-recently-active first, deterministically).
    pub fn set_max_flows(&mut self, max_flows: usize, obs: &mut dyn InferObserver) {
        assert!(max_flows >= 1, "max_flows must be at least 1");
        self.config.max_flows = max_flows;
        while self.flows.len() > self.config.max_flows {
            self.evict_for_cap(obs);
        }
    }

    /// Flows dropped unclassified (idle timeout or cap) so far.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Classified flow ids currently remembered (both generations) — the
    /// bounded-memory proxy the soak tests assert on.
    pub fn done_len(&self) -> usize {
        self.done_cur.len() + self.done_prev.len()
    }

    /// Whether late packets of `flow_id` are still being ignored.
    fn is_done(&self, flow_id: u64) -> bool {
        self.done_cur.contains(&flow_id) || self.done_prev.contains(&flow_id)
    }

    /// Marks a flow classified: its late packets are ignored for at
    /// least one horizon from now.
    fn mark_done(&mut self, flow_id: u64) {
        self.done_cur.insert(flow_id);
    }

    /// Advances the done-set generations to cover `now`. Each rotation
    /// retires the previous generation, so a classified id survives at
    /// least one and at most two horizons. Driven only by packet
    /// timestamps — deterministic for a given trace.
    fn rotate_done(&mut self, now: f64) {
        let horizon = self.config.done_horizon_s;
        if !horizon.is_finite() {
            return; // remember forever (explicitly configured)
        }
        let elapsed = now - self.done_gen_start;
        if elapsed < horizon {
            return;
        }
        let k = (elapsed / horizon).floor();
        if k >= 2.0 {
            // The stream jumped more than a full generation: everything
            // remembered is already past its guaranteed horizon.
            self.done_prev.clear();
            self.done_cur.clear();
        } else {
            std::mem::swap(&mut self.done_prev, &mut self.done_cur);
            self.done_cur.clear();
        }
        self.done_gen_start += k * horizon;
    }

    /// Ingests one packet. May return a completed flow (the packet
    /// proved its window elapsed) and may evict idle flows as a side
    /// effect of stream time advancing to `rec.ts`.
    pub fn push(
        &mut self,
        rec: &PacketRecord,
        obs: &mut dyn InferObserver,
    ) -> Option<CompletedFlow> {
        self.rotate_done(rec.ts);
        self.evict_idle(rec.ts, obs);
        if self.is_done(rec.flow_id) {
            return None;
        }
        if rec.pkt.ts >= self.config.flowpic.window_s {
            // The observation window has fully elapsed: the picture is
            // final (this packet and all later ones fall outside the
            // window, so the batch builder would skip them too).
            let tracked = self.flows.remove(&rec.flow_id);
            self.mark_done(rec.flow_id);
            let (input, pkts, stats) = match tracked {
                Some(t) => (
                    t.pic.picture().to_input(self.config.norm),
                    t.pic.counted(),
                    t.feature_stats(),
                ),
                // First observed packet is already past the window: the
                // in-window picture is provably empty.
                None => (
                    IncrementalFlowpic::new(self.config.flowpic)
                        .picture()
                        .to_input(self.config.norm),
                    0,
                    (0.0, 0.0),
                ),
            };
            return Some(CompletedFlow {
                flow_id: rec.flow_id,
                input,
                pkts,
                completed_at: rec.ts,
                mean_pkt_size: stats.0,
                mean_iat_s: stats.1,
            });
        }
        if !self.flows.contains_key(&rec.flow_id) && self.flows.len() >= self.config.max_flows {
            self.evict_for_cap(obs);
        }
        let entry = self
            .flows
            .entry(rec.flow_id)
            .or_insert_with(|| TrackedFlow {
                pic: IncrementalFlowpic::new(self.config.flowpic),
                last_seen: rec.ts,
                n_pkts: 0,
                sum_size: 0.0,
                first_pkt_ts: 0.0,
                last_pkt_ts: 0.0,
            });
        entry.pic.push(&rec.pkt);
        entry.last_seen = rec.ts;
        if entry.n_pkts == 0 {
            entry.first_pkt_ts = rec.pkt.ts;
        }
        entry.last_pkt_ts = rec.pkt.ts;
        entry.sum_size += rec.pkt.size as f64;
        entry.n_pkts += 1;
        None
    }

    /// Completes every remaining live flow (early termination at stream
    /// end), in flow-id order for determinism.
    pub fn flush(&mut self, now: f64) -> Vec<CompletedFlow> {
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let t = self.flows.remove(&id).expect("flow listed but missing");
                self.done_cur.insert(id);
                let (mean_pkt_size, mean_iat_s) = t.feature_stats();
                CompletedFlow {
                    flow_id: id,
                    input: t.pic.picture().to_input(self.config.norm),
                    pkts: t.pic.counted(),
                    completed_at: now,
                    mean_pkt_size,
                    mean_iat_s,
                }
            })
            .collect()
    }

    fn evict_idle(&mut self, now: f64, obs: &mut dyn InferObserver) {
        let mut stale: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, t)| now - t.last_seen > self.config.idle_timeout_s)
            .map(|(&id, _)| id)
            .collect();
        stale.sort_unstable();
        for id in stale {
            let t = self.flows.remove(&id).expect("stale flow missing");
            self.evicted += 1;
            obs.infer_event(&InferEvent::FlowEvicted {
                shard: self.shard,
                flow_id: id,
                pkts: t.pic.counted(),
                reason: self.evict_reason(id, "idle", "idle-unclassified"),
            });
        }
    }

    /// Telemetry reason for evicting `flow_id`: flows that never
    /// reached the classifier get the `-unclassified` spelling.
    fn evict_reason(
        &self,
        flow_id: u64,
        classified: &'static str,
        unclassified: &'static str,
    ) -> &'static str {
        if self.is_done(flow_id) {
            classified
        } else {
            unclassified
        }
    }

    fn evict_for_cap(&mut self, obs: &mut dyn InferObserver) {
        let victim = self
            .flows
            .iter()
            .min_by(|(ida, a), (idb, b)| a.last_seen.total_cmp(&b.last_seen).then(ida.cmp(idb)))
            .map(|(&id, _)| id)
            .expect("cap eviction on an empty tracker");
        let t = self.flows.remove(&victim).expect("victim missing");
        self.evicted += 1;
        obs.infer_event(&InferEvent::FlowEvicted {
            shard: self.shard,
            flow_id: victim,
            pkts: t.pic.counted(),
            reason: self.evict_reason(victim, "cap", "cap-unclassified"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcbench::telemetry::InferRecorder;
    use trafficgen::types::{Direction, Pkt};

    fn rec(flow_id: u64, ts: f64, pkt_ts: f64) -> PacketRecord {
        PacketRecord {
            flow_id,
            ts,
            pkt: Pkt::data(pkt_ts, 500, Direction::Upstream),
        }
    }

    fn cfg() -> TrackerConfig {
        TrackerConfig {
            flowpic: FlowpicConfig::mini(),
            norm: Normalization::Raw,
            idle_timeout_s: 5.0,
            max_flows: 100,
            done_horizon_s: 120.0,
        }
    }

    #[test]
    fn window_crossing_completes_a_flow_once() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        assert!(tracker.push(&rec(1, 0.0, 0.0), &mut obs).is_none());
        assert!(tracker.push(&rec(1, 1.0, 1.0), &mut obs).is_none());
        // Stream time 2.0 (rate-compressed), flow-relative time past the
        // 15 s window: the window elapsed without tripping idle eviction.
        let done = tracker.push(&rec(1, 2.0, 15.2), &mut obs).unwrap();
        assert_eq!(done.flow_id, 1);
        assert_eq!(done.pkts, 2);
        assert_eq!(done.input.iter().sum::<f32>(), 2.0);
        assert_eq!(tracker.active_flows(), 0);
        // Late packets of a classified flow are ignored.
        assert!(tracker.push(&rec(1, 2.5, 16.0), &mut obs).is_none());
        assert_eq!(tracker.active_flows(), 0);
    }

    #[test]
    fn completed_flows_carry_window_feature_stats() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        // Two in-window packets: sizes 500 each (the `rec` helper), flow
        // times 0 and 2 → mean size 500, mean IAT 2.
        assert!(tracker.push(&rec(1, 0.0, 0.0), &mut obs).is_none());
        assert!(tracker.push(&rec(1, 1.0, 2.0), &mut obs).is_none());
        let done = tracker.push(&rec(1, 2.0, 15.5), &mut obs).unwrap();
        assert_eq!(done.mean_pkt_size, 500.0);
        assert_eq!(done.mean_iat_s, 2.0);
        // A single-packet flow has no gaps.
        tracker.push(&rec(2, 3.0, 0.0), &mut obs);
        let done = tracker.flush(4.0);
        assert_eq!(done[0].mean_pkt_size, 500.0);
        assert_eq!(done[0].mean_iat_s, 0.0);
        // First packet already past the window: empty picture, zeroes.
        let mut tracker = FlowTracker::new(cfg());
        let done = tracker.push(&rec(9, 0.0, 15.5), &mut obs).unwrap();
        assert_eq!(done.pkts, 0);
        assert_eq!((done.mean_pkt_size, done.mean_iat_s), (0.0, 0.0));
    }

    #[test]
    fn flush_terminates_live_flows_early() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        tracker.push(&rec(3, 0.0, 0.0), &mut obs);
        tracker.push(&rec(1, 0.1, 0.0), &mut obs);
        let done = tracker.flush(0.2);
        assert_eq!(
            done.iter().map(|d| d.flow_id).collect::<Vec<_>>(),
            vec![1, 3],
            "flush is flow-id ordered"
        );
        assert!(done.iter().all(|d| d.pkts == 1));
        assert_eq!(tracker.active_flows(), 0);
    }

    #[test]
    fn idle_flows_are_evicted_not_classified() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        tracker.push(&rec(1, 0.0, 0.0), &mut obs);
        tracker.push(&rec(2, 4.0, 0.0), &mut obs);
        // Stream time jumps past flow 1's idle deadline.
        tracker.push(&rec(2, 6.0, 2.0), &mut obs);
        assert_eq!(tracker.active_flows(), 1);
        assert_eq!(tracker.evicted(), 1);
        assert_eq!(
            obs.events,
            vec![InferEvent::FlowEvicted {
                shard: 0,
                flow_id: 1,
                pkts: 1,
                reason: "idle-unclassified"
            }]
        );
        // An evicted flow that resumes restarts from an empty picture.
        tracker.push(&rec(1, 6.5, 6.5), &mut obs);
        let done = tracker.flush(7.0);
        let f1 = done.iter().find(|d| d.flow_id == 1).unwrap();
        assert_eq!(f1.pkts, 1);
    }

    #[test]
    fn done_set_stays_bounded_over_a_stream_of_distinct_flows() {
        // Regression: `done` used to retain one u64 per classified flow
        // forever, leaking linearly over a long stream. With a 10 s
        // horizon, ids classified more than two horizons ago must be
        // forgotten.
        let mut tracker = FlowTracker::new(TrackerConfig {
            done_horizon_s: 10.0,
            ..cfg()
        });
        let mut obs = InferRecorder::new();
        let n_flows = 5_000u64;
        let mut max_done = 0usize;
        for id in 0..n_flows {
            // One flow per 0.1 s of stream time, classified immediately
            // by a window-crossing packet: ~100 classifications per
            // 10 s generation.
            let ts = id as f64 * 0.1;
            tracker.push(&rec(id, ts, 0.0), &mut obs);
            let done = tracker.push(&rec(id, ts + 0.05, 15.5), &mut obs);
            assert!(done.is_some(), "flow {id} must classify");
            max_done = max_done.max(tracker.done_len());
        }
        // Two generations × ~100 classifications each, not 5000.
        assert!(
            max_done <= 2 * 100 + 2,
            "done set grew to {max_done} over {n_flows} distinct flows"
        );
        assert!(tracker.done_len() <= 2 * 100 + 2);
    }

    #[test]
    fn late_packets_are_ignored_within_the_horizon() {
        let mut tracker = FlowTracker::new(TrackerConfig {
            done_horizon_s: 10.0,
            ..cfg()
        });
        let mut obs = InferRecorder::new();
        tracker.push(&rec(1, 0.0, 0.0), &mut obs);
        assert!(tracker.push(&rec(1, 1.0, 15.5), &mut obs).is_some());
        // Within one horizon of classification: late packets ignored.
        assert!(tracker.push(&rec(1, 9.0, 16.0), &mut obs).is_none());
        assert_eq!(tracker.active_flows(), 0);
        // Far past two horizons, the id is forgotten and may restart as
        // a new flow (5-tuple reuse).
        assert!(tracker.push(&rec(1, 35.0, 0.0), &mut obs).is_none());
        assert_eq!(tracker.active_flows(), 1);
    }

    #[test]
    fn infinite_horizon_remembers_forever() {
        let mut tracker = FlowTracker::new(TrackerConfig {
            done_horizon_s: f64::INFINITY,
            ..cfg()
        });
        let mut obs = InferRecorder::new();
        tracker.push(&rec(1, 0.0, 15.5), &mut obs);
        assert!(tracker.push(&rec(1, 1e9, 16.0), &mut obs).is_none());
        assert_eq!(tracker.done_len(), 1);
    }

    #[test]
    fn set_max_flows_evicts_down_immediately() {
        let mut tracker = FlowTracker::new(cfg());
        let mut obs = InferRecorder::new();
        for id in 0..6u64 {
            tracker.push(&rec(id, id as f64 * 0.1, 0.0), &mut obs);
        }
        assert_eq!(tracker.active_flows(), 6);
        tracker.set_max_flows(2, &mut obs);
        assert_eq!(tracker.active_flows(), 2);
        assert_eq!(tracker.evicted(), 4);
        // Least-recently-active went first.
        let evicted: Vec<u64> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::FlowEvicted { flow_id, .. } => Some(*flow_id),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cap_evicts_least_recently_active() {
        let mut tracker = FlowTracker::new(TrackerConfig {
            max_flows: 2,
            ..cfg()
        });
        let mut obs = InferRecorder::new();
        tracker.push(&rec(10, 0.0, 0.0), &mut obs);
        tracker.push(&rec(11, 0.1, 0.0), &mut obs);
        tracker.push(&rec(12, 0.2, 0.0), &mut obs);
        assert_eq!(tracker.active_flows(), 2, "cap holds");
        assert_eq!(
            obs.events,
            vec![InferEvent::FlowEvicted {
                shard: 0,
                flow_id: 10,
                pkts: 1,
                reason: "cap-unclassified"
            }]
        );
    }

    #[test]
    fn never_classified_evictions_are_distinguishable() {
        // Regression for open-world accounting: every eviction of a flow
        // that never reached the classifier must carry the
        // `-unclassified` reason suffix, so unknown-rate math can
        // separate tracker losses from model rejections.
        let mut tracker = FlowTracker::new(TrackerConfig {
            max_flows: 1,
            ..cfg()
        });
        let mut obs = InferRecorder::new();
        tracker.push(&rec(1, 0.0, 0.0), &mut obs);
        tracker.push(&rec(2, 0.1, 0.0), &mut obs); // cap-evicts flow 1
        tracker.push(&rec(3, 6.0, 0.0), &mut obs); // idle+cap window for flow 2
        let reasons: Vec<&str> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                InferEvent::FlowEvicted { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec!["cap-unclassified", "idle-unclassified"]);
        // A classified flow's id, by contrast, is never evicted at all
        // within the done horizon: its late packets are ignored without
        // touching tracker state.
        let done = tracker.push(&rec(3, 6.5, 15.5), &mut obs);
        assert!(done.is_some());
        let before = tracker.evicted();
        tracker.push(&rec(3, 7.0, 16.0), &mut obs);
        assert_eq!(tracker.evicted(), before);
    }
}
