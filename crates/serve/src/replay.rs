//! Trace replay: drive the serving loop over a synthetic dataset.
//!
//! A replay interleaves every flow of a `trafficgen` [`Dataset`] into one
//! globally-ordered packet stream: flow *i* starts `i · flow_gap_s`
//! seconds into the stream, and the whole stream is compressed by the
//! rate multiplier (rate 10 plays the trace 10× faster). Two clocks are
//! deliberately kept apart:
//!
//! * **flow-relative time** ([`PacketRecord::pkt`]'s own timestamp) feeds
//!   the incremental flowpic and is *never* scaled — the 15 s window and
//!   the resulting picture are bit-identical to offline rasterization at
//!   any rate;
//! * **stream time** ([`PacketRecord::ts`]) drives idle-timeout eviction
//!   and the micro-batcher's max-wait deadline, so a higher rate packs
//!   more completions into each deadline window and produces larger
//!   batches.
//!
//! The replay itself runs as fast as the machine allows (no sleeping):
//! batch latencies in the report are real forward-pass wall-clock,
//! summarized as p50/p95/p99 via `mlstats::quantiles`.

use std::sync::Arc;
use std::time::Instant;

use mlstats::quantiles::percentile;
use nettensor::checkpoint::CheckpointError;
use tcbench::telemetry::{throughput_per_sec, InferEvent, InferObserver};
use trafficgen::types::{Dataset, Pkt};

use crate::engine::{Classifier, EngineConfig, InferenceEngine, Outcome, Prediction};
use crate::registry::ModelRegistry;
use crate::tracker::{FlowTracker, TrackerConfig};

/// One packet as the serving loop sees it: which flow, when in the
/// stream, and the flow-relative packet itself.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// The flow this packet belongs to.
    pub flow_id: u64,
    /// Arrival time on the stream clock, in seconds (already divided by
    /// the rate multiplier).
    pub ts: f64,
    /// The packet, timestamped in seconds since its flow's start —
    /// exactly what the flowpic builder consumes.
    pub pkt: Pkt,
}

/// Interleaves a dataset's flows into a stream-ordered trace. Flow `i`
/// (background flows included — serving does not know labels) starts at
/// `i * flow_gap_s` source seconds; all stream timestamps are divided by
/// `rate`. Ordering ties break on `(flow_id, packet index)`, so the
/// trace is deterministic.
pub fn trace_from_dataset(ds: &Dataset, flow_gap_s: f64, rate: f64) -> Vec<PacketRecord> {
    assert!(rate > 0.0, "rate multiplier must be positive, got {rate}");
    assert!(flow_gap_s >= 0.0, "flow gap must be non-negative");
    let mut trace: Vec<(f64, u64, usize, PacketRecord)> = Vec::new();
    for (i, flow) in ds.flows.iter().enumerate() {
        let start = i as f64 * flow_gap_s;
        for (j, pkt) in flow.pkts.iter().enumerate() {
            let ts = (start + pkt.ts) / rate;
            trace.push((
                ts,
                flow.id,
                j,
                PacketRecord {
                    flow_id: flow.id,
                    ts,
                    pkt: *pkt,
                },
            ));
        }
    }
    trace.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    trace.into_iter().map(|(_, _, _, rec)| rec).collect()
}

/// What a replay produced, ready for reporting.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Packets replayed.
    pub packets: usize,
    /// Every prediction, in classification order.
    pub predictions: Vec<Prediction>,
    /// Micro-batches run.
    pub batches: usize,
    /// Flows dropped unclassified (idle timeout or cap).
    pub evicted: usize,
    /// Forward wall-clock per batch, milliseconds.
    pub batch_wall_ms: Vec<f64>,
    /// Whole-replay wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Hot-swaps performed mid-stream.
    pub swaps: usize,
    /// Dataplane lanes the replay ran over (1 = the unsharded loop).
    pub shards: usize,
}

impl ReplayReport {
    /// End-to-end classification throughput over the whole replay.
    pub fn samples_per_sec(&self) -> f64 {
        throughput_per_sec(self.predictions.len(), self.wall_ms / 1e3)
    }

    /// Flows rejected as unknown by the engine's open-world threshold.
    pub fn rejected(&self) -> usize {
        self.predictions.iter().filter(|p| p.is_rejected()).count()
    }

    /// `(p50, p95, p99)` of per-batch forward wall-clock, milliseconds.
    /// Zero when no batch ran.
    pub fn latency_percentiles_ms(&self) -> (f64, f64, f64) {
        if self.batch_wall_ms.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        (
            percentile(&self.batch_wall_ms, 0.50),
            percentile(&self.batch_wall_ms, 0.95),
            percentile(&self.batch_wall_ms, 0.99),
        )
    }

    /// The human-readable latency/throughput report `tcb serve` prints.
    /// With rejection disabled the output is byte-identical to the
    /// pre-rejection renderer; the `(rejected)` line only appears when
    /// at least one flow was rejected.
    pub fn render(&self, class_names: &[String]) -> String {
        let (p50, p95, p99) = self.latency_percentiles_ms();
        let mut counts = vec![0usize; class_names.len()];
        let mut rejected = 0usize;
        for p in &self.predictions {
            match p.label() {
                Some(label) if label < counts.len() => counts[label] += 1,
                Some(_) => {}
                None => rejected += 1,
            }
        }
        let mut out = format!(
            "replayed {} packets over {} shard(s): {} flows classified in {} batches, \
             {} evicted, {} hot-swap(s)\n\
             batch latency ms: p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}\n\
             throughput: {:.1} samples/sec over {:.1} ms\n",
            self.packets,
            self.shards,
            self.predictions.len(),
            self.batches,
            self.evicted,
            self.swaps,
            self.samples_per_sec(),
            self.wall_ms,
        );
        for (name, n) in class_names.iter().zip(&counts) {
            out.push_str(&format!("  {name:<16} {n}\n"));
        }
        if rejected > 0 {
            out.push_str(&format!("  {:<16} {rejected}\n", "(rejected)"));
        }
        out
    }

    /// Scores the replay against the dataset's ground-truth labels.
    ///
    /// `n_known` is the number of classes the served model was trained
    /// on; truth classes `>= n_known` are open-world unknowns. For a
    /// closed-world replay pass `ds.num_classes()` — the unknown
    /// counters simply stay zero.
    pub fn score(&self, ds: &Dataset, n_known: usize) -> ReplayScore {
        assert!(n_known >= 1, "need at least one known class");
        let truth: std::collections::HashMap<u64, usize> =
            ds.flows.iter().map(|f| (f.id, f.class as usize)).collect();
        let mut matrix = mlstats::metrics::ConfusionMatrix::new(n_known);
        let mut score = ReplayScore {
            n_known_classes: n_known,
            known_total: 0,
            known_correct: 0,
            known_rejected: 0,
            unknown_total: 0,
            unknown_rejected: 0,
            per_class: Vec::new(),
        };
        for p in &self.predictions {
            let Some(&truth_class) = truth.get(&p.flow_id) else {
                continue; // flow id aged out of the dataset (5-tuple reuse)
            };
            if truth_class < n_known {
                score.known_total += 1;
                match p.outcome {
                    Outcome::Accepted(label) => {
                        if label == truth_class {
                            score.known_correct += 1;
                        }
                        if label < n_known {
                            matrix.record(truth_class, label);
                        }
                    }
                    Outcome::Rejected => score.known_rejected += 1,
                }
            } else {
                score.unknown_total += 1;
                if p.is_rejected() {
                    score.unknown_rejected += 1;
                }
            }
        }
        let precision = matrix.per_class_precision_checked();
        let recall = matrix.per_class_recall_checked();
        for c in 0..n_known {
            let f1 = match (precision[c], recall[c]) {
                (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
                (Some(_), Some(_)) => Some(0.0),
                _ => None,
            };
            score.per_class.push(ClassScore {
                support: matrix.support(c) as usize,
                predicted: matrix.predicted(c) as usize,
                precision: precision[c],
                recall: recall[c],
                f1,
            });
        }
        score
    }
}

/// Per-class accuracy of one replay, for the model's classes, computed
/// over *accepted* predictions joined to ground truth by flow id.
/// Undefined ratios (zero predicted, zero support) are `None`, never
/// NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassScore {
    /// Known-truth flows of this class that got an accepted prediction.
    pub support: usize,
    /// Accepted predictions of this class (on known-truth flows).
    pub predicted: usize,
    /// `tp / predicted`; `None` when the class was never predicted.
    pub precision: Option<f64>,
    /// `tp / support`; `None` when the class has no support.
    pub recall: Option<f64>,
    /// Harmonic mean of the above; `None` when either is undefined.
    pub f1: Option<f64>,
}

/// Ground-truth scoring of a replay: per-class metrics plus the
/// open-world summary the `quic` lane is judged on.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayScore {
    /// Classes the served model separates (truth classes beyond this
    /// are open-world unknowns).
    pub n_known_classes: usize,
    /// Predictions on known-class flows.
    pub known_total: usize,
    /// Known-class flows accepted with the correct label.
    pub known_correct: usize,
    /// Known-class flows the engine rejected (each one costs accuracy).
    pub known_rejected: usize,
    /// Predictions on unknown-class flows.
    pub unknown_total: usize,
    /// Unknown-class flows the engine rejected — the open-world win.
    pub unknown_rejected: usize,
    /// Per-class precision/recall/F1 over accepted predictions,
    /// index-aligned with the model's classes.
    pub per_class: Vec<ClassScore>,
}

impl ReplayScore {
    /// Fraction of known-class flows accepted with the correct label
    /// (a rejected known flow counts as a miss). 0 with no known flows.
    pub fn known_accuracy(&self) -> f64 {
        if self.known_total == 0 {
            0.0
        } else {
            self.known_correct as f64 / self.known_total as f64
        }
    }

    /// Fraction of unknown-class flows rejected. `None` when the
    /// replay had no unknown flows (closed world).
    pub fn unknown_rejection_rate(&self) -> Option<f64> {
        if self.unknown_total == 0 {
            None
        } else {
            Some(self.unknown_rejected as f64 / self.unknown_total as f64)
        }
    }

    /// Fraction of unknown-class flows *accepted* under some known
    /// label — the open-world failure mode. `None` without unknowns.
    pub fn false_accept_rate(&self) -> Option<f64> {
        self.unknown_rejection_rate().map(|r| 1.0 - r)
    }

    /// The human-readable scoring block `tcb serve --score` appends.
    pub fn render(&self, class_names: &[String]) -> String {
        let mut out = format!(
            "ground truth: known accuracy {:.4} ({}/{} flows, {} rejected)\n",
            self.known_accuracy(),
            self.known_correct,
            self.known_total,
            self.known_rejected,
        );
        if let (Some(urr), Some(far)) = (self.unknown_rejection_rate(), self.false_accept_rate()) {
            out.push_str(&format!(
                "open world: {}/{} unknown flows rejected ({:.4}), false-accept rate {:.4}\n",
                self.unknown_rejected, self.unknown_total, urr, far,
            ));
        }
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.4}"),
            None => "-".into(),
        };
        out.push_str("  class            support predicted precision recall f1\n");
        for (c, s) in self.per_class.iter().enumerate() {
            let name = class_names
                .get(c)
                .map(String::as_str)
                .unwrap_or("(unnamed)");
            out.push_str(&format!(
                "  {name:<16} {:>7} {:>9} {:>9} {:>6} {:>6}\n",
                s.support,
                s.predicted,
                fmt(s.precision),
                fmt(s.recall),
                fmt(s.f1),
            ));
        }
        out
    }
}

/// Replay knobs in one typed bundle — the config `tcb serve --replay`
/// parses its flags into before handing off to [`replay_dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Stagger between consecutive flow starts, in source seconds.
    pub flow_gap_s: f64,
    /// Replay speed multiplier (must be positive).
    pub rate: f64,
    /// Flow-tracking knobs.
    pub tracker: TrackerConfig,
    /// Micro-batching knobs.
    pub engine: EngineConfig,
    /// Dataplane lanes to shard the tracker/engine into (1 = the
    /// unsharded loop; see [`crate::shard`]).
    pub shards: usize,
    /// Worker threads for a sharded replay (0 = one per lane). Never
    /// changes predictions — the determinism contract.
    pub workers: usize,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            flow_gap_s: 0.4,
            rate: 1.0,
            tracker: TrackerConfig::default(),
            engine: EngineConfig::default(),
            shards: 1,
            workers: 0,
        }
    }
}

/// A model to hot-swap in once the replay reaches a packet index.
pub struct ScheduledSwap {
    /// Swap just before processing this packet index.
    pub at_packet: usize,
    /// The replacement model.
    pub model: Arc<dyn Classifier>,
}

/// A hot-swap scheduled as a fraction of the trace rather than a packet
/// index — the `--swap-at 0.5` form, resolved against the trace length
/// by [`replay_dataset`].
pub struct FractionalSwap {
    /// Swap after this fraction of the trace, in `[0, 1]`.
    pub at_fraction: f64,
    /// The replacement model.
    pub model: Arc<dyn Classifier>,
}

/// Builds the packet trace for `ds` and replays it through a fresh
/// tracker + engine against `registry`'s active model, resolving
/// fractional swap schedules to packet indices. This is the library
/// entry point behind `tcb serve --replay`.
pub fn replay_dataset(
    ds: &Dataset,
    registry: &Arc<ModelRegistry>,
    config: &ReplayConfig,
    swaps: Vec<FractionalSwap>,
    obs: &mut dyn InferObserver,
) -> Result<ReplayReport, CheckpointError> {
    let trace = trace_from_dataset(ds, config.flow_gap_s, config.rate);
    let scheduled: Vec<ScheduledSwap> = swaps
        .into_iter()
        .map(|s| ScheduledSwap {
            at_packet: (trace.len() as f64 * s.at_fraction) as usize,
            model: s.model,
        })
        .collect();
    if config.shards > 1 {
        return crate::shard::replay_sharded(
            &trace,
            registry,
            config.tracker,
            config.engine,
            scheduled,
            config.shards,
            config.workers,
            obs,
        );
    }
    replay(
        &trace,
        registry,
        config.tracker,
        config.engine,
        scheduled,
        obs,
    )
}

/// Replays a trace through a tracker + engine against `registry`'s
/// active model, performing any scheduled hot-swaps on the way. Errors
/// only if a scheduled swap is invalid (class-count mismatch).
pub fn replay(
    trace: &[PacketRecord],
    registry: &Arc<ModelRegistry>,
    tracker_cfg: TrackerConfig,
    engine_cfg: EngineConfig,
    swaps: Vec<ScheduledSwap>,
    obs: &mut dyn InferObserver,
) -> Result<ReplayReport, CheckpointError> {
    let initial = registry.active();
    obs.infer_event(&InferEvent::StreamStart {
        model_fingerprint: initial.fingerprint(),
        n_classes: initial.n_classes(),
    });
    drop(initial);

    // A replay's report needs every prediction and every batch latency,
    // so full retention is forced here — the one place it is explicit.
    let engine_cfg = EngineConfig {
        retain_full_history: true,
        ..engine_cfg
    };
    let mut tracker = FlowTracker::new(tracker_cfg);
    let mut engine = InferenceEngine::new(registry.clone(), engine_cfg);
    let mut pending_swaps: Vec<ScheduledSwap> = swaps;
    pending_swaps.sort_by_key(|s| s.at_packet);
    let mut swaps_done = 0usize;
    let t0 = Instant::now();

    for (i, rec) in trace.iter().enumerate() {
        while pending_swaps.first().is_some_and(|s| s.at_packet <= i) {
            let swap = pending_swaps.remove(0);
            let (old, new) = registry.swap(swap.model)?;
            swaps_done += 1;
            obs.infer_event(&InferEvent::ModelSwapped {
                old_fingerprint: old,
                new_fingerprint: new,
                reason: "scheduled",
            });
        }
        engine.poll(rec.ts, obs);
        if let Some(done) = tracker.push(rec, obs) {
            engine.submit(done, rec.ts, obs);
        }
    }
    // Stream end: early-terminate live flows, then drain the queue.
    let now = trace.last().map(|r| r.ts).unwrap_or(0.0);
    for done in tracker.flush(now) {
        engine.submit(done, now, obs);
    }
    engine.drain(obs);

    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = ReplayReport {
        packets: trace.len(),
        predictions: engine.predictions().to_vec(),
        batches: engine.batches_run(),
        evicted: tracker.evicted(),
        batch_wall_ms: engine.batch_wall_ms().to_vec(),
        wall_ms,
        swaps: swaps_done,
        shards: 1,
    };
    obs.infer_event(&InferEvent::StreamEnd {
        flows: report.predictions.len(),
        batches: report.batches,
        evicted: report.evicted,
        wall_ms,
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::{Direction, Flow, Partition};

    fn dataset(n_flows: usize, pkts_per_flow: usize) -> Dataset {
        let flows = (0..n_flows)
            .map(|i| Flow {
                id: i as u64,
                class: (i % 2) as u16,
                partition: Partition::Unpartitioned,
                background: false,
                pkts: (0..pkts_per_flow)
                    .map(|j| {
                        Pkt::data(
                            j as f64 * 0.5,
                            200 + 100 * (j % 5) as u16,
                            Direction::Upstream,
                        )
                    })
                    .collect(),
            })
            .collect();
        Dataset {
            name: "replay-test".into(),
            class_names: vec!["a".into(), "b".into()],
            flows,
        }
    }

    #[test]
    fn trace_is_time_ordered_and_rate_scaled() {
        let ds = dataset(3, 4);
        let trace = trace_from_dataset(&ds, 1.0, 2.0);
        assert_eq!(trace.len(), 12);
        assert!(trace.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Flow 0's packet at source time 0.5 lands at stream time 0.25
        // under rate 2, while its flow-relative timestamp stays 0.5.
        let rec = trace
            .iter()
            .find(|r| r.flow_id == 0 && r.pkt.ts == 0.5)
            .unwrap();
        assert_eq!(rec.ts, 0.25);
    }

    #[test]
    fn rate_never_changes_flow_relative_timestamps() {
        let ds = dataset(2, 6);
        for rate in [0.5, 1.0, 8.0] {
            let trace = trace_from_dataset(&ds, 0.3, rate);
            for rec in &trace {
                let flow = &ds.flows[rec.flow_id as usize];
                assert!(flow.pkts.iter().any(|p| p.ts == rec.pkt.ts));
            }
        }
    }

    #[test]
    fn zero_wall_replay_reports_zero_throughput_not_inf() {
        // Regression: a replay fast enough for the wall-clock to round
        // to zero used to report predictions/1ns ≈ inf samples/sec.
        let report = ReplayReport {
            packets: 4,
            predictions: vec![Prediction {
                flow_id: 0,
                outcome: Outcome::Accepted(1),
                confidence: 0.7,
            }],
            batches: 1,
            evicted: 0,
            batch_wall_ms: vec![0.0],
            wall_ms: 0.0,
            swaps: 0,
            shards: 1,
        };
        assert_eq!(report.samples_per_sec(), 0.0);
        assert!(report.samples_per_sec().is_finite());
        let text = report.render(&["a".into(), "b".into()]);
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }

    #[test]
    fn report_percentiles_and_render() {
        let report = ReplayReport {
            packets: 10,
            predictions: vec![
                Prediction {
                    flow_id: 0,
                    outcome: Outcome::Accepted(0),
                    confidence: 0.9,
                },
                Prediction {
                    flow_id: 1,
                    outcome: Outcome::Accepted(1),
                    confidence: 0.8,
                },
            ],
            batches: 2,
            evicted: 1,
            batch_wall_ms: vec![1.0, 3.0],
            wall_ms: 50.0,
            swaps: 0,
            shards: 2,
        };
        let (p50, p95, p99) = report.latency_percentiles_ms();
        assert_eq!(p50, 2.0);
        assert!(p95 <= p99 && p99 <= 3.0);
        let text = report.render(&["a".into(), "b".into()]);
        assert!(text.contains("2 flows classified"));
        assert!(text.contains("2 shard(s)"));
        assert!(text.contains("p50"));
        assert!(text.contains("1 evicted"));
        assert!(
            !text.contains("(rejected)"),
            "no rejection line without rejections: {text}"
        );
    }

    #[test]
    fn render_shows_rejections_only_when_present() {
        let report = ReplayReport {
            packets: 4,
            predictions: vec![
                Prediction {
                    flow_id: 0,
                    outcome: Outcome::Accepted(0),
                    confidence: 0.9,
                },
                Prediction {
                    flow_id: 1,
                    outcome: Outcome::Rejected,
                    confidence: 0.2,
                },
            ],
            batches: 1,
            evicted: 0,
            batch_wall_ms: vec![1.0],
            wall_ms: 10.0,
            swaps: 0,
            shards: 1,
        };
        assert_eq!(report.rejected(), 1);
        let text = report.render(&["a".into(), "b".into()]);
        assert!(text.contains("(rejected)       1"), "{text}");
        assert!(text.contains("2 flows classified"), "{text}");
    }

    #[test]
    fn score_joins_truth_and_separates_known_from_unknown() {
        // Dataset: flows 0..3 are class 0/1 (known), flow 4 is class 2
        // (unknown to a 2-class model).
        let mut ds = dataset(4, 2);
        ds.flows.push(Flow {
            id: 4,
            class: 2,
            partition: Partition::Unpartitioned,
            background: false,
            pkts: vec![Pkt::data(0.0, 300, Direction::Upstream)],
        });
        let report = ReplayReport {
            packets: 10,
            predictions: vec![
                // flow 0 (truth 0): correct accept.
                Prediction {
                    flow_id: 0,
                    outcome: Outcome::Accepted(0),
                    confidence: 0.9,
                },
                // flow 1 (truth 1): wrong accept.
                Prediction {
                    flow_id: 1,
                    outcome: Outcome::Accepted(0),
                    confidence: 0.6,
                },
                // flow 2 (truth 0): rejected known flow — costs accuracy.
                Prediction {
                    flow_id: 2,
                    outcome: Outcome::Rejected,
                    confidence: 0.3,
                },
                // flow 4 (truth 2, unknown): correctly rejected.
                Prediction {
                    flow_id: 4,
                    outcome: Outcome::Rejected,
                    confidence: 0.4,
                },
            ],
            batches: 1,
            evicted: 0,
            batch_wall_ms: vec![1.0],
            wall_ms: 10.0,
            swaps: 0,
            shards: 1,
        };
        let score = report.score(&ds, 2);
        assert_eq!(score.known_total, 3);
        assert_eq!(score.known_correct, 1);
        assert_eq!(score.known_rejected, 1);
        assert_eq!(score.unknown_total, 1);
        assert_eq!(score.unknown_rejected, 1);
        assert!((score.known_accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(score.unknown_rejection_rate(), Some(1.0));
        assert_eq!(score.false_accept_rate(), Some(0.0));
        // Per-class: class 0 predicted twice (1 tp), class 1 never
        // predicted → precision None, recall Some(0.0), f1 None.
        assert_eq!(score.per_class[0].precision, Some(0.5));
        assert_eq!(score.per_class[0].recall, Some(1.0));
        assert_eq!(score.per_class[1].precision, None);
        assert_eq!(score.per_class[1].recall, Some(0.0));
        assert_eq!(score.per_class[1].f1, None);
        let text = score.render(&["a".into(), "b".into()]);
        assert!(text.contains("known accuracy 0.3333"), "{text}");
        assert!(text.contains("1/1 unknown flows rejected"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn closed_world_score_has_no_unknown_rates() {
        let ds = dataset(2, 2);
        let report = ReplayReport {
            packets: 4,
            predictions: vec![Prediction {
                flow_id: 0,
                outcome: Outcome::Accepted(0),
                confidence: 0.9,
            }],
            batches: 1,
            evicted: 0,
            batch_wall_ms: vec![1.0],
            wall_ms: 10.0,
            swaps: 0,
            shards: 1,
        };
        let score = report.score(&ds, ds.num_classes());
        assert_eq!(score.unknown_rejection_rate(), None);
        assert_eq!(score.false_accept_rate(), None);
        assert_eq!(score.known_accuracy(), 1.0);
    }
}
