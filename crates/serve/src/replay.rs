//! Trace replay: drive the serving loop over a synthetic dataset.
//!
//! A replay interleaves every flow of a `trafficgen` [`Dataset`] into one
//! globally-ordered packet stream: flow *i* starts `i · flow_gap_s`
//! seconds into the stream, and the whole stream is compressed by the
//! rate multiplier (rate 10 plays the trace 10× faster). Two clocks are
//! deliberately kept apart:
//!
//! * **flow-relative time** ([`PacketRecord::pkt`]'s own timestamp) feeds
//!   the incremental flowpic and is *never* scaled — the 15 s window and
//!   the resulting picture are bit-identical to offline rasterization at
//!   any rate;
//! * **stream time** ([`PacketRecord::ts`]) drives idle-timeout eviction
//!   and the micro-batcher's max-wait deadline, so a higher rate packs
//!   more completions into each deadline window and produces larger
//!   batches.
//!
//! The replay itself runs as fast as the machine allows (no sleeping):
//! batch latencies in the report are real forward-pass wall-clock,
//! summarized as p50/p95/p99 via `mlstats::quantiles`.

use std::sync::Arc;
use std::time::Instant;

use mlstats::quantiles::percentile;
use nettensor::checkpoint::CheckpointError;
use tcbench::telemetry::{throughput_per_sec, InferEvent, InferObserver};
use trafficgen::types::{Dataset, Pkt};

use crate::engine::{Classifier, EngineConfig, InferenceEngine, Prediction};
use crate::registry::ModelRegistry;
use crate::tracker::{FlowTracker, TrackerConfig};

/// One packet as the serving loop sees it: which flow, when in the
/// stream, and the flow-relative packet itself.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// The flow this packet belongs to.
    pub flow_id: u64,
    /// Arrival time on the stream clock, in seconds (already divided by
    /// the rate multiplier).
    pub ts: f64,
    /// The packet, timestamped in seconds since its flow's start —
    /// exactly what the flowpic builder consumes.
    pub pkt: Pkt,
}

/// Interleaves a dataset's flows into a stream-ordered trace. Flow `i`
/// (background flows included — serving does not know labels) starts at
/// `i * flow_gap_s` source seconds; all stream timestamps are divided by
/// `rate`. Ordering ties break on `(flow_id, packet index)`, so the
/// trace is deterministic.
pub fn trace_from_dataset(ds: &Dataset, flow_gap_s: f64, rate: f64) -> Vec<PacketRecord> {
    assert!(rate > 0.0, "rate multiplier must be positive, got {rate}");
    assert!(flow_gap_s >= 0.0, "flow gap must be non-negative");
    let mut trace: Vec<(f64, u64, usize, PacketRecord)> = Vec::new();
    for (i, flow) in ds.flows.iter().enumerate() {
        let start = i as f64 * flow_gap_s;
        for (j, pkt) in flow.pkts.iter().enumerate() {
            let ts = (start + pkt.ts) / rate;
            trace.push((
                ts,
                flow.id,
                j,
                PacketRecord {
                    flow_id: flow.id,
                    ts,
                    pkt: *pkt,
                },
            ));
        }
    }
    trace.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    trace.into_iter().map(|(_, _, _, rec)| rec).collect()
}

/// What a replay produced, ready for reporting.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Packets replayed.
    pub packets: usize,
    /// Every prediction, in classification order.
    pub predictions: Vec<Prediction>,
    /// Micro-batches run.
    pub batches: usize,
    /// Flows dropped unclassified (idle timeout or cap).
    pub evicted: usize,
    /// Forward wall-clock per batch, milliseconds.
    pub batch_wall_ms: Vec<f64>,
    /// Whole-replay wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Hot-swaps performed mid-stream.
    pub swaps: usize,
    /// Dataplane lanes the replay ran over (1 = the unsharded loop).
    pub shards: usize,
}

impl ReplayReport {
    /// End-to-end classification throughput over the whole replay.
    pub fn samples_per_sec(&self) -> f64 {
        throughput_per_sec(self.predictions.len(), self.wall_ms / 1e3)
    }

    /// `(p50, p95, p99)` of per-batch forward wall-clock, milliseconds.
    /// Zero when no batch ran.
    pub fn latency_percentiles_ms(&self) -> (f64, f64, f64) {
        if self.batch_wall_ms.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        (
            percentile(&self.batch_wall_ms, 0.50),
            percentile(&self.batch_wall_ms, 0.95),
            percentile(&self.batch_wall_ms, 0.99),
        )
    }

    /// The human-readable latency/throughput report `tcb serve` prints.
    pub fn render(&self, class_names: &[String]) -> String {
        let (p50, p95, p99) = self.latency_percentiles_ms();
        let mut counts = vec![0usize; class_names.len()];
        for p in &self.predictions {
            if p.label < counts.len() {
                counts[p.label] += 1;
            }
        }
        let mut out = format!(
            "replayed {} packets over {} shard(s): {} flows classified in {} batches, \
             {} evicted, {} hot-swap(s)\n\
             batch latency ms: p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}\n\
             throughput: {:.1} samples/sec over {:.1} ms\n",
            self.packets,
            self.shards,
            self.predictions.len(),
            self.batches,
            self.evicted,
            self.swaps,
            self.samples_per_sec(),
            self.wall_ms,
        );
        for (name, n) in class_names.iter().zip(&counts) {
            out.push_str(&format!("  {name:<16} {n}\n"));
        }
        out
    }
}

/// Replay knobs in one typed bundle — the config `tcb serve --replay`
/// parses its flags into before handing off to [`replay_dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Stagger between consecutive flow starts, in source seconds.
    pub flow_gap_s: f64,
    /// Replay speed multiplier (must be positive).
    pub rate: f64,
    /// Flow-tracking knobs.
    pub tracker: TrackerConfig,
    /// Micro-batching knobs.
    pub engine: EngineConfig,
    /// Dataplane lanes to shard the tracker/engine into (1 = the
    /// unsharded loop; see [`crate::shard`]).
    pub shards: usize,
    /// Worker threads for a sharded replay (0 = one per lane). Never
    /// changes predictions — the determinism contract.
    pub workers: usize,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            flow_gap_s: 0.4,
            rate: 1.0,
            tracker: TrackerConfig::default(),
            engine: EngineConfig::default(),
            shards: 1,
            workers: 0,
        }
    }
}

/// A model to hot-swap in once the replay reaches a packet index.
pub struct ScheduledSwap {
    /// Swap just before processing this packet index.
    pub at_packet: usize,
    /// The replacement model.
    pub model: Arc<dyn Classifier>,
}

/// A hot-swap scheduled as a fraction of the trace rather than a packet
/// index — the `--swap-at 0.5` form, resolved against the trace length
/// by [`replay_dataset`].
pub struct FractionalSwap {
    /// Swap after this fraction of the trace, in `[0, 1]`.
    pub at_fraction: f64,
    /// The replacement model.
    pub model: Arc<dyn Classifier>,
}

/// Builds the packet trace for `ds` and replays it through a fresh
/// tracker + engine against `registry`'s active model, resolving
/// fractional swap schedules to packet indices. This is the library
/// entry point behind `tcb serve --replay`.
pub fn replay_dataset(
    ds: &Dataset,
    registry: &Arc<ModelRegistry>,
    config: &ReplayConfig,
    swaps: Vec<FractionalSwap>,
    obs: &mut dyn InferObserver,
) -> Result<ReplayReport, CheckpointError> {
    let trace = trace_from_dataset(ds, config.flow_gap_s, config.rate);
    let scheduled: Vec<ScheduledSwap> = swaps
        .into_iter()
        .map(|s| ScheduledSwap {
            at_packet: (trace.len() as f64 * s.at_fraction) as usize,
            model: s.model,
        })
        .collect();
    if config.shards > 1 {
        return crate::shard::replay_sharded(
            &trace,
            registry,
            config.tracker,
            config.engine,
            scheduled,
            config.shards,
            config.workers,
            obs,
        );
    }
    replay(
        &trace,
        registry,
        config.tracker,
        config.engine,
        scheduled,
        obs,
    )
}

/// Replays a trace through a tracker + engine against `registry`'s
/// active model, performing any scheduled hot-swaps on the way. Errors
/// only if a scheduled swap is invalid (class-count mismatch).
pub fn replay(
    trace: &[PacketRecord],
    registry: &Arc<ModelRegistry>,
    tracker_cfg: TrackerConfig,
    engine_cfg: EngineConfig,
    swaps: Vec<ScheduledSwap>,
    obs: &mut dyn InferObserver,
) -> Result<ReplayReport, CheckpointError> {
    let initial = registry.active();
    obs.infer_event(&InferEvent::StreamStart {
        model_fingerprint: initial.fingerprint(),
        n_classes: initial.n_classes(),
    });
    drop(initial);

    // A replay's report needs every prediction and every batch latency,
    // so full retention is forced here — the one place it is explicit.
    let engine_cfg = EngineConfig {
        retain_full_history: true,
        ..engine_cfg
    };
    let mut tracker = FlowTracker::new(tracker_cfg);
    let mut engine = InferenceEngine::new(registry.clone(), engine_cfg);
    let mut pending_swaps: Vec<ScheduledSwap> = swaps;
    pending_swaps.sort_by_key(|s| s.at_packet);
    let mut swaps_done = 0usize;
    let t0 = Instant::now();

    for (i, rec) in trace.iter().enumerate() {
        while pending_swaps.first().is_some_and(|s| s.at_packet <= i) {
            let swap = pending_swaps.remove(0);
            let (old, new) = registry.swap(swap.model)?;
            swaps_done += 1;
            obs.infer_event(&InferEvent::ModelSwapped {
                old_fingerprint: old,
                new_fingerprint: new,
                reason: "scheduled",
            });
        }
        engine.poll(rec.ts, obs);
        if let Some(done) = tracker.push(rec, obs) {
            engine.submit(done, rec.ts, obs);
        }
    }
    // Stream end: early-terminate live flows, then drain the queue.
    let now = trace.last().map(|r| r.ts).unwrap_or(0.0);
    for done in tracker.flush(now) {
        engine.submit(done, now, obs);
    }
    engine.drain(obs);

    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = ReplayReport {
        packets: trace.len(),
        predictions: engine.predictions().to_vec(),
        batches: engine.batches_run(),
        evicted: tracker.evicted(),
        batch_wall_ms: engine.batch_wall_ms().to_vec(),
        wall_ms,
        swaps: swaps_done,
        shards: 1,
    };
    obs.infer_event(&InferEvent::StreamEnd {
        flows: report.predictions.len(),
        batches: report.batches,
        evicted: report.evicted,
        wall_ms,
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::{Direction, Flow, Partition};

    fn dataset(n_flows: usize, pkts_per_flow: usize) -> Dataset {
        let flows = (0..n_flows)
            .map(|i| Flow {
                id: i as u64,
                class: (i % 2) as u16,
                partition: Partition::Unpartitioned,
                background: false,
                pkts: (0..pkts_per_flow)
                    .map(|j| {
                        Pkt::data(
                            j as f64 * 0.5,
                            200 + 100 * (j % 5) as u16,
                            Direction::Upstream,
                        )
                    })
                    .collect(),
            })
            .collect();
        Dataset {
            name: "replay-test".into(),
            class_names: vec!["a".into(), "b".into()],
            flows,
        }
    }

    #[test]
    fn trace_is_time_ordered_and_rate_scaled() {
        let ds = dataset(3, 4);
        let trace = trace_from_dataset(&ds, 1.0, 2.0);
        assert_eq!(trace.len(), 12);
        assert!(trace.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Flow 0's packet at source time 0.5 lands at stream time 0.25
        // under rate 2, while its flow-relative timestamp stays 0.5.
        let rec = trace
            .iter()
            .find(|r| r.flow_id == 0 && r.pkt.ts == 0.5)
            .unwrap();
        assert_eq!(rec.ts, 0.25);
    }

    #[test]
    fn rate_never_changes_flow_relative_timestamps() {
        let ds = dataset(2, 6);
        for rate in [0.5, 1.0, 8.0] {
            let trace = trace_from_dataset(&ds, 0.3, rate);
            for rec in &trace {
                let flow = &ds.flows[rec.flow_id as usize];
                assert!(flow.pkts.iter().any(|p| p.ts == rec.pkt.ts));
            }
        }
    }

    #[test]
    fn zero_wall_replay_reports_zero_throughput_not_inf() {
        // Regression: a replay fast enough for the wall-clock to round
        // to zero used to report predictions/1ns ≈ inf samples/sec.
        let report = ReplayReport {
            packets: 4,
            predictions: vec![Prediction {
                flow_id: 0,
                label: 1,
                confidence: 0.7,
            }],
            batches: 1,
            evicted: 0,
            batch_wall_ms: vec![0.0],
            wall_ms: 0.0,
            swaps: 0,
            shards: 1,
        };
        assert_eq!(report.samples_per_sec(), 0.0);
        assert!(report.samples_per_sec().is_finite());
        let text = report.render(&["a".into(), "b".into()]);
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }

    #[test]
    fn report_percentiles_and_render() {
        let report = ReplayReport {
            packets: 10,
            predictions: vec![
                Prediction {
                    flow_id: 0,
                    label: 0,
                    confidence: 0.9,
                },
                Prediction {
                    flow_id: 1,
                    label: 1,
                    confidence: 0.8,
                },
            ],
            batches: 2,
            evicted: 1,
            batch_wall_ms: vec![1.0, 3.0],
            wall_ms: 50.0,
            swaps: 0,
            shards: 2,
        };
        let (p50, p95, p99) = report.latency_percentiles_ms();
        assert_eq!(p50, 2.0);
        assert!(p95 <= p99 && p99 <= 3.0);
        let text = report.render(&["a".into(), "b".into()]);
        assert!(text.contains("2 flows classified"));
        assert!(text.contains("2 shard(s)"));
        assert!(text.contains("p50"));
        assert!(text.contains("1 evicted"));
    }
}
