//! Table rendering and result export for the bench binaries.
//!
//! Every bench binary prints a table in the shape of its paper
//! counterpart and writes the same content as JSON next to the binary's
//! working directory, so EXPERIMENTS.md can quote either.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple aligned-column table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. `"Table 4 — script, 32x32"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Writes `value` as pretty JSON to `path`, creating parent directories.
pub fn write_json<T: Serialize>(path: &str, value: &T) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(
        path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
}

/// Formats a `[0,1]` metric as the percent string the paper's tables use.
pub fn pct(value: f64) -> String {
    format!("{:.2}", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Aug", "script", "human"]);
        t.push_row(vec!["Change RTT".into(), "97.29".into(), "70.76".into()]);
        t.push_row(vec![
            "No augmentation".into(),
            "95.64".into(),
            "68.84".into(),
        ]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Change RTT"));
        // Columns align: both data lines have 'script' values starting at
        // the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let pos1 = lines[3].find("97.29").unwrap();
        let pos2 = lines[4].find("95.64").unwrap();
        assert_eq!(pos1, pos2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new("t", &["a", "b"]).push_row(vec!["x".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9680), "96.80");
        assert_eq!(pct(1.0), "100.00");
    }

    #[test]
    fn write_json_round_trips() {
        let dir = std::env::temp_dir().join("tcbench_report_test");
        let path = dir.join("out.json");
        let t = Table::new("t", &["a"]);
        write_json(path.to_str().unwrap(), &t).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"title\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
