//! Reference feature distributions snapshotted at train time.
//!
//! The paper's `human` shift (Fig. 8) was diagnosed *post-hoc* by
//! comparing per-class packet-size KDEs across partitions. To do the
//! same comparison *online*, the serving daemon needs the training-side
//! half of that comparison saved next to the model: for every class, a
//! bounded sample of per-flow feature summaries (mean packet size, mean
//! inter-arrival) drawn from the flows the model was trained on. The
//! drift monitor KDE-fits these at load time and scores live windows
//! against them with the L1 metric.
//!
//! The snapshot lives in a *side file* (plain serde JSON), never inside
//! the `ServedModel` checkpoint — that envelope's field order is frozen.
//! `tcb train --refdist-out PATH` writes it; `tcb serve --daemon
//! --drift-ref PATH` loads it.
//!
//! Feature definitions must match the serving tracker exactly or the
//! monitor would see phantom drift: a flow's features are computed over
//! the packets that fall inside the observation window `[0, window_s)`
//! — the packets the tracker actually pushes into a flowpic — with
//! `mean_iat_s = (last_ts − first_ts) / (n − 1)` over those packets.

use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

use mlstats::reservoir::Reservoir;
use trafficgen::types::Dataset;

/// Per-flow feature summaries for one class: parallel bounded samples of
/// the two drift features.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct ClassReference {
    /// Mean data-packet size (bytes) of each sampled flow.
    pub mean_pkt_sizes: Vec<f64>,
    /// Mean inter-arrival gap (seconds) of each sampled flow; flows with
    /// fewer than two in-window packets contribute `0.0`.
    pub mean_iats_s: Vec<f64>,
}

/// Bounded per-class reference samples of the training distribution.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ReferenceDistributions {
    /// Class names, indexed by label.
    pub class_names: Vec<String>,
    /// One reference per class, indexed by label. A class the training
    /// set never saw has empty sample vectors — the monitor skips it.
    pub classes: Vec<ClassReference>,
}

impl ReferenceDistributions {
    /// Snapshots `dataset` (true labels): every flow contributes its
    /// in-window feature summary to its class's reservoir, capped at
    /// `max_per_class` flows via the deterministic reservoir, so the
    /// file stays bounded no matter the training-set size.
    pub fn from_dataset(
        dataset: &Dataset,
        window_s: f64,
        max_per_class: usize,
        seed: u64,
    ) -> ReferenceDistributions {
        let n_classes = dataset.num_classes();
        let stats = dataset.flows.iter().filter_map(|f| {
            flow_window_stats(f.pkts.iter().map(|p| (p.ts, p.size)), window_s)
                .map(|(size, iat)| (f.class as usize, size, iat))
        });
        ReferenceDistributions::from_flow_stats(
            dataset.class_names.clone(),
            n_classes,
            stats,
            max_per_class,
            seed,
        )
    }

    /// Builds references from pre-computed `(class, mean_pkt_size,
    /// mean_iat_s)` triples — the retrain path, where the summaries come
    /// from the serving tracker rather than a dataset.
    pub fn from_flow_stats(
        class_names: Vec<String>,
        n_classes: usize,
        stats: impl IntoIterator<Item = (usize, f64, f64)>,
        max_per_class: usize,
        seed: u64,
    ) -> ReferenceDistributions {
        // Sizes and IATs are sampled by one reservoir decision per flow
        // (parallel pushes share the replacement schedule), so the two
        // vectors stay flow-aligned.
        let mut sizes: Vec<Reservoir> = (0..n_classes)
            .map(|c| Reservoir::new(max_per_class.max(1), seed ^ (c as u64)))
            .collect();
        let mut iats: Vec<Reservoir> = (0..n_classes)
            .map(|c| Reservoir::new(max_per_class.max(1), seed ^ (c as u64)))
            .collect();
        for (class, mean_size, mean_iat) in stats {
            if class < n_classes {
                sizes[class].push(mean_size);
                iats[class].push(mean_iat);
            }
        }
        let classes = sizes
            .iter()
            .zip(&iats)
            .map(|(s, i)| ClassReference {
                mean_pkt_sizes: s.samples().to_vec(),
                mean_iats_s: i.samples().to_vec(),
            })
            .collect();
        ReferenceDistributions {
            class_names,
            classes,
        }
    }

    /// Number of classes the references cover.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Writes the snapshot as pretty-printed JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a snapshot written by [`ReferenceDistributions::save`].
    pub fn load(path: &Path) -> io::Result<ReferenceDistributions> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Feature summary of one flow over its observation window: mean packet
/// size and mean inter-arrival gap of the packets with `ts < window_s`
/// (the half-open window the flowpic builder uses). `None` when no
/// packet falls inside the window.
pub fn flow_window_stats(
    pkts: impl IntoIterator<Item = (f64, u16)>,
    window_s: f64,
) -> Option<(f64, f64)> {
    let mut n = 0usize;
    let mut sum_size = 0.0;
    let mut first_ts = 0.0;
    let mut last_ts = 0.0;
    for (ts, size) in pkts {
        if ts >= window_s {
            continue;
        }
        if n == 0 {
            first_ts = ts;
        }
        last_ts = ts;
        sum_size += size as f64;
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let mean_iat = if n >= 2 {
        (last_ts - first_ts) / (n - 1) as f64
    } else {
        0.0
    };
    Some((sum_size / n as f64, mean_iat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::stress::{StressConfig, StressSim};

    #[test]
    fn window_stats_match_the_tracker_view() {
        // 6 packets inside the window, one closing packet outside.
        let pkts: Vec<(f64, u16)> = (0..6).map(|j| (j as f64 * 2.0, 100)).collect();
        let mut all = pkts.clone();
        all.push((15.5, 60));
        let (size, iat) = flow_window_stats(all, 15.0).unwrap();
        assert_eq!(size, 100.0);
        assert!((iat - 2.0).abs() < 1e-12);
        assert!(flow_window_stats(vec![(16.0, 100)], 15.0).is_none());
        let (size, iat) = flow_window_stats(vec![(1.0, 500)], 15.0).unwrap();
        assert_eq!((size, iat), (500.0, 0.0));
    }

    #[test]
    fn from_dataset_is_bounded_and_class_tinted() {
        let ds = StressSim::new(StressConfig::tiny()).generate(7);
        let refs = ReferenceDistributions::from_dataset(&ds, 15.0, 16, 1);
        assert_eq!(refs.n_classes(), 5);
        for c in &refs.classes {
            assert!(c.mean_pkt_sizes.len() <= 16);
            assert_eq!(c.mean_pkt_sizes.len(), c.mean_iats_s.len());
            assert!(!c.mean_pkt_sizes.is_empty());
        }
        // Stress sizes are `120 + 250·class + h % 400`: class means are
        // ordered, so the reference must preserve that ordering.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let m0 = mean(&refs.classes[0].mean_pkt_sizes);
        let m4 = mean(&refs.classes[4].mean_pkt_sizes);
        assert!(m0 < 520.0 && m4 > 1000.0, "m0 {m0} m4 {m4}");
    }

    #[test]
    fn save_load_round_trips() {
        // Offline builds stub out serde_json; the round trip is only
        // meaningful where JSON actually serializes.
        if serde_json::from_str::<f64>("1.0").is_err() {
            eprintln!("skipping: serde_json unavailable in this build");
            return;
        }
        let ds = StressSim::new(StressConfig::tiny()).generate(3);
        let refs = ReferenceDistributions::from_dataset(&ds, 15.0, 8, 2);
        let dir = std::env::temp_dir().join("tcb_refdist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("refs.json");
        refs.save(&path).unwrap();
        let back = ReferenceDistributions::load(&path).unwrap();
        assert_eq!(refs, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let ds = StressSim::new(StressConfig::tiny()).generate(3);
        let a = ReferenceDistributions::from_dataset(&ds, 15.0, 8, 2);
        let b = ReferenceDistributions::from_dataset(&ds, 15.0, 8, 2);
        assert_eq!(a, b);
    }
}
