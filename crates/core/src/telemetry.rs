//! Training telemetry: typed events, observer sinks, JSONL logging.
//!
//! Campaign-scale replication (Tables 3–8: thousands of trainer
//! invocations) needs more than a terminal `TrainSummary` — wall-time,
//! throughput and the per-epoch loss stream decide whether a campaign is
//! healthy long before it finishes. This module is that observability
//! layer:
//!
//! * [`TrainEvent`] — the typed event vocabulary every trainer speaks
//!   (`RunStart`, `BatchEnd`, `EpochEnd`, `RunEnd`, plus the
//!   campaign-level `TaskEnd`);
//! * [`TrainObserver`] — the sink trait. Trainers call
//!   [`TrainObserver::event`] at well-defined points; [`Noop`] keeps
//!   every pre-existing call site source-compatible and zero-cost.
//! * Sinks: [`JsonlSink`] (one versioned JSON object per line, each line
//!   a single atomic append), [`ProgressSink`] (human-readable progress
//!   on a terminal), [`Recorder`] (in-memory, for tests), [`Tee`]
//!   (fan-out composition).
//! * [`CampaignProgress`] — thread-safe per-task aggregation for
//!   `campaign::run_parallel*`: completed/reused/computed counts and a
//!   throughput-based ETA.
//!
//! # Observability-only invariant
//!
//! Telemetry is strictly read-only with respect to training: no event,
//! timestamp or throughput figure ever enters a checkpoint, a config
//! fingerprint, or any value the training loop branches on. A run with a
//! sink attached is bit-identical — weights and summary — to the same run
//! without one, at any `batch_workers` (asserted in the integration
//! tests). Wall-clock fields are *measured*, so they differ between runs;
//! everything else in an event stream is deterministic.
//!
//! # JSONL schema (version 1)
//!
//! Every line is a self-contained JSON object with `"v":1` and an
//! `"event"` discriminator. Fields are stable per event kind:
//!
//! ```text
//! {"v":1,"event":"run_start","trainer":"supervised","samples":120,"max_epochs":50,"start_epoch":0}
//! {"v":1,"event":"batch_end","epoch":1,"batch":0,"loss":1.61,"samples":32}
//! {"v":1,"event":"epoch_end","epoch":1,"train_loss":1.59,"val_loss":1.62,"samples":120,"wall_ms":35.2,"samples_per_sec":3400.9}
//! {"v":1,"event":"run_end","epochs":12,"final_train_loss":0.41,"best_epoch":7,"wall_ms":423.0}
//! {"v":1,"event":"task_end","task":3,"completed":4,"total":12,"reused":false,"wall_ms":1042.7,"eta_ms":2085.4}
//! ```
//!
//! Optional fields (`val_loss`, `best_epoch`, `eta_ms`) serialize as
//! `null`. Serialization is hand-rolled (no serde) so the byte format is
//! fully owned by this module and versioned explicitly.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::time::Instant;

/// JSONL schema version stamped on every emitted line.
pub const SCHEMA_VERSION: u32 = 1;

/// A telemetry event. Trainers emit these through a [`TrainObserver`];
/// all fields are plain data — consuming an event cannot influence the
/// run that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// A trainer entered its epoch loop.
    RunStart {
        /// Which loop: `"supervised"`, `"fine-tune"`, `"simclr"`,
        /// `"supcon"`, `"byol"` or `"gbdt"`.
        trainer: &'static str,
        /// Training-set size in samples (flows).
        samples: usize,
        /// The epoch safety cap.
        max_epochs: usize,
        /// First epoch this invocation will run (nonzero after a resume).
        start_epoch: usize,
    },
    /// One optimizer step finished.
    BatchEnd {
        /// 1-based epoch the batch belongs to.
        epoch: usize,
        /// 0-based batch index within the epoch.
        batch: usize,
        /// Mean loss over the batch.
        loss: f64,
        /// Samples in the batch (the ragged last batch is smaller).
        samples: usize,
    },
    /// One epoch finished (train pass plus validation, if any).
    EpochEnd {
        /// 1-based epoch index.
        epoch: usize,
        /// Sample-weighted mean training loss of the epoch.
        train_loss: f64,
        /// Validation loss, when a validation set was provided.
        val_loss: Option<f64>,
        /// Samples forwarded through the model during the train pass
        /// (contrastive trainers count augmented views, so this is
        /// 2× the flow count there).
        samples: usize,
        /// Wall-clock of the train pass, in milliseconds.
        wall_ms: f64,
        /// Training throughput: `samples / wall`.
        samples_per_sec: f64,
    },
    /// The trainer returned.
    RunEnd {
        /// Epochs actually run (≤ `max_epochs`).
        epochs: usize,
        /// Final epoch's training loss.
        final_train_loss: f64,
        /// 1-based epoch whose weights were restored (the watched
        /// optimum), `None` when no epoch ran.
        best_epoch: Option<usize>,
        /// Wall-clock of the whole invocation, in milliseconds.
        wall_ms: f64,
    },
    /// A campaign task completed (emitted by [`CampaignProgress`]).
    TaskEnd {
        /// Task index within the campaign grid.
        task: usize,
        /// Tasks completed so far, this one included.
        completed: usize,
        /// Total tasks in the campaign.
        total: usize,
        /// Whether the result was reloaded from disk instead of
        /// recomputed.
        reused: bool,
        /// Campaign wall-clock so far, in milliseconds.
        wall_ms: f64,
        /// Estimated remaining wall-clock, from the mean cost of the
        /// tasks actually computed; `None` until one has been.
        eta_ms: Option<f64>,
    },
}

/// Shortest wall-clock interval credited with a throughput figure, in
/// seconds. `Instant` resolves to nanoseconds, so a fast run on a
/// coarse-clock CI machine can measure an elapsed time of exactly zero
/// — and a naive `n / secs` then emits `inf` (or `NaN` for `0 / 0`)
/// into a JSONL field consumers treat as a finite rate. One microsecond
/// is far below any real epoch or batch wall-clock and far above clock
/// resolution, so intervals under it carry no rate information.
pub const MIN_THROUGHPUT_ELAPSED_SECS: f64 = 1e-6;

/// `samples / elapsed`, defended against degenerate timing: elapsed
/// intervals that are non-finite or shorter than
/// [`MIN_THROUGHPUT_ELAPSED_SECS`] yield `0.0` ("too fast to measure")
/// instead of `inf`/`NaN` or an absurd clamped rate. Every
/// `samples_per_sec` field the telemetry layer emits is computed through
/// here.
pub fn throughput_per_sec(samples: usize, elapsed_secs: f64) -> f64 {
    if !elapsed_secs.is_finite() || elapsed_secs < MIN_THROUGHPUT_ELAPSED_SECS {
        0.0
    } else {
        samples as f64 / elapsed_secs
    }
}

/// Writes `v` as a JSON number, or `null` for non-finite values (JSON
/// has no NaN/Infinity). Rust's float `Display` is shortest-round-trip,
/// so the value re-parses exactly.
fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_opt(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_num(out, v),
        None => out.push_str("null"),
    }
}

/// Writes `v` as a JSON string literal. Only runtime-provided strings
/// (socket paths) go through here; static event vocabulary is emitted
/// verbatim.
fn push_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TrainEvent {
    /// The event as one line of schema-version-[`SCHEMA_VERSION`] JSON
    /// (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"v\":{SCHEMA_VERSION},");
        match self {
            TrainEvent::RunStart {
                trainer,
                samples,
                max_epochs,
                start_epoch,
            } => {
                // Trainer names are static identifiers — no escaping to do.
                let _ = write!(
                    s,
                    "\"event\":\"run_start\",\"trainer\":\"{trainer}\",\
                     \"samples\":{samples},\"max_epochs\":{max_epochs},\
                     \"start_epoch\":{start_epoch}"
                );
            }
            TrainEvent::BatchEnd {
                epoch,
                batch,
                loss,
                samples,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"batch_end\",\"epoch\":{epoch},\"batch\":{batch},\"loss\":"
                );
                push_num(&mut s, *loss);
                let _ = write!(s, ",\"samples\":{samples}");
            }
            TrainEvent::EpochEnd {
                epoch,
                train_loss,
                val_loss,
                samples,
                wall_ms,
                samples_per_sec,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"epoch_end\",\"epoch\":{epoch},\"train_loss\":"
                );
                push_num(&mut s, *train_loss);
                s.push_str(",\"val_loss\":");
                push_opt(&mut s, *val_loss);
                let _ = write!(s, ",\"samples\":{samples},\"wall_ms\":");
                push_num(&mut s, *wall_ms);
                s.push_str(",\"samples_per_sec\":");
                push_num(&mut s, *samples_per_sec);
            }
            TrainEvent::RunEnd {
                epochs,
                final_train_loss,
                best_epoch,
                wall_ms,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"run_end\",\"epochs\":{epochs},\"final_train_loss\":"
                );
                push_num(&mut s, *final_train_loss);
                s.push_str(",\"best_epoch\":");
                match best_epoch {
                    Some(e) => {
                        let _ = write!(s, "{e}");
                    }
                    None => s.push_str("null"),
                }
                s.push_str(",\"wall_ms\":");
                push_num(&mut s, *wall_ms);
            }
            TrainEvent::TaskEnd {
                task,
                completed,
                total,
                reused,
                wall_ms,
                eta_ms,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"task_end\",\"task\":{task},\"completed\":{completed},\
                     \"total\":{total},\"reused\":{reused},\"wall_ms\":"
                );
                push_num(&mut s, *wall_ms);
                s.push_str(",\"eta_ms\":");
                push_opt(&mut s, *eta_ms);
            }
        }
        s.push('}');
        s
    }
}

/// A sink for [`TrainEvent`]s. Implementations must not assume any
/// particular event ordering beyond: one `RunStart` precedes a run's
/// `BatchEnd`/`EpochEnd` stream, and one `RunEnd` closes it.
pub trait TrainObserver {
    /// Receives one event. Called synchronously from the training loop —
    /// keep it cheap (the JSONL sink does one `write` per event).
    fn event(&mut self, event: &TrainEvent);
}

/// The do-nothing observer every non-instrumented call site uses.
#[derive(Debug, Default, Clone, Copy)]
pub struct Noop;

impl TrainObserver for Noop {
    fn event(&mut self, _event: &TrainEvent) {}
}

/// Collects events in memory — the test sink.
#[derive(Debug, Default)]
pub struct Recorder {
    /// Every event received, in order.
    pub events: Vec<TrainEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// The `EpochEnd` events, in order.
    pub fn epoch_ends(&self) -> Vec<&TrainEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TrainEvent::EpochEnd { .. }))
            .collect()
    }
}

impl TrainObserver for Recorder {
    fn event(&mut self, event: &TrainEvent) {
        self.events.push(event.clone());
    }
}

/// Writes each event as one JSON line. The file is opened in append
/// mode and every event is a single `write` call of a complete
/// `line + '\n'`, so concurrent writers (campaign tasks logging to the
/// same file) interleave at line granularity — no torn lines.
#[derive(Debug)]
pub struct JsonlSink {
    file: File,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(JsonlSink { file })
    }

    /// Opens `path` for appending (created if missing) — the mode
    /// resumed runs use so the event stream accumulates across
    /// invocations.
    pub fn append(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink { file })
    }
}

impl TrainObserver for JsonlSink {
    fn event(&mut self, event: &TrainEvent) {
        let mut line = event.to_json_line();
        line.push('\n');
        // One write_all per line: atomic at line granularity under
        // O_APPEND. A failed write must not kill a training run that is
        // otherwise healthy — telemetry is observability-only.
        let _ = self.file.write_all(line.as_bytes());
    }
}

/// Human-readable progress on a terminal (stderr). Per-batch events are
/// deliberately not printed — at campaign scale they are noise.
pub struct ProgressSink {
    out: Box<dyn io::Write + Send>,
    trainer: &'static str,
}

impl ProgressSink {
    /// A sink printing to stderr.
    pub fn stderr() -> ProgressSink {
        ProgressSink::to(Box::new(io::stderr()))
    }

    /// A sink printing to an arbitrary writer (tests).
    pub fn to(out: Box<dyn io::Write + Send>) -> ProgressSink {
        ProgressSink { out, trainer: "?" }
    }
}

impl TrainObserver for ProgressSink {
    fn event(&mut self, event: &TrainEvent) {
        let line = match event {
            TrainEvent::RunStart {
                trainer,
                samples,
                max_epochs,
                start_epoch,
            } => {
                self.trainer = trainer;
                if *start_epoch > 0 {
                    format!(
                        "[{trainer}] resuming at epoch {} ({samples} samples, cap {max_epochs})",
                        start_epoch + 1
                    )
                } else {
                    format!("[{trainer}] training {samples} samples (cap {max_epochs} epochs)")
                }
            }
            TrainEvent::BatchEnd { .. } => return,
            TrainEvent::EpochEnd {
                epoch,
                train_loss,
                val_loss,
                samples_per_sec,
                ..
            } => {
                let val = match val_loss {
                    Some(v) => format!(" val {v:.6}"),
                    None => String::new(),
                };
                format!(
                    "[{}] epoch {epoch}: train {train_loss:.6}{val} ({samples_per_sec:.0} samples/s)",
                    self.trainer
                )
            }
            TrainEvent::RunEnd {
                epochs,
                final_train_loss,
                best_epoch,
                wall_ms,
            } => {
                let best = match best_epoch {
                    Some(e) => format!(", best epoch {e}"),
                    None => String::new(),
                };
                format!(
                    "[{}] done: {epochs} epochs in {:.1}s, final loss {final_train_loss:.6}{best}",
                    self.trainer,
                    wall_ms / 1000.0
                )
            }
            TrainEvent::TaskEnd {
                task,
                completed,
                total,
                reused,
                eta_ms,
                ..
            } => {
                let how = if *reused { "reused" } else { "computed" };
                let eta = match eta_ms {
                    Some(ms) => format!(", eta {:.0}s", ms / 1000.0),
                    None => String::new(),
                };
                format!("[campaign] task {task} {how} ({completed}/{total}{eta})")
            }
        };
        let _ = writeln!(self.out, "{line}");
    }
}

/// Fans each event out to every inner sink, in order.
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Box<dyn TrainObserver + Send>>,
}

impl Tee {
    /// An empty tee (behaves like [`Noop`]).
    pub fn new() -> Tee {
        Tee::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn TrainObserver + Send>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TrainObserver for Tee {
    fn event(&mut self, event: &TrainEvent) {
        for sink in &mut self.sinks {
            sink.event(event);
        }
    }
}

/// Thread-safe campaign aggregation: counts completed/reused/computed
/// tasks and emits a [`TrainEvent::TaskEnd`] per task with an ETA
/// extrapolated from the mean wall-clock of the tasks actually computed
/// so far. Shared by reference across campaign workers
/// (`campaign::run_parallel_observed`).
pub struct CampaignProgress {
    inner: Mutex<ProgressInner>,
}

struct ProgressInner {
    sink: Box<dyn TrainObserver + Send>,
    total: usize,
    completed: usize,
    reused: usize,
    computed: usize,
    started: Instant,
}

impl CampaignProgress {
    /// Tracks a campaign of `total` tasks, forwarding `TaskEnd` events to
    /// `sink`.
    pub fn new(total: usize, sink: Box<dyn TrainObserver + Send>) -> CampaignProgress {
        CampaignProgress {
            inner: Mutex::new(ProgressInner {
                sink,
                total,
                completed: 0,
                reused: 0,
                computed: 0,
                started: Instant::now(),
            }),
        }
    }

    /// Records task `task` as done. `reused` marks a result reloaded from
    /// disk rather than recomputed.
    pub fn task_done(&self, task: usize, reused: bool) {
        let mut inner = self.inner.lock();
        inner.completed += 1;
        if reused {
            inner.reused += 1;
        } else {
            inner.computed += 1;
        }
        let wall_ms = inner.started.elapsed().as_secs_f64() * 1000.0;
        // Reused tasks are ~free; extrapolate only from computed ones.
        let eta_ms = if inner.computed > 0 {
            let per_task = wall_ms / inner.computed as f64;
            Some(per_task * (inner.total - inner.completed) as f64)
        } else {
            None
        };
        let event = TrainEvent::TaskEnd {
            task,
            completed: inner.completed,
            total: inner.total,
            reused,
            wall_ms,
            eta_ms,
        };
        inner.sink.event(&event);
    }

    /// `(completed, reused, computed)` so far.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        (inner.completed, inner.reused, inner.computed)
    }
}

/// Adapts a [`TrainObserver`] to the callback `gbdt::GbdtClassifier::
/// fit_observed` takes: each boosting round becomes an `EpochEnd` (a
/// round is the booster's epoch) with the round's post-update training
/// logloss and throughput over the `n_samples` training rows.
pub fn gbdt_round_observer<'a>(
    obs: &'a mut dyn TrainObserver,
    n_samples: usize,
) -> impl FnMut(&gbdt::BoostRound) + 'a {
    move |round: &gbdt::BoostRound| {
        obs.event(&TrainEvent::EpochEnd {
            epoch: round.round,
            train_loss: round.train_logloss,
            val_loss: None,
            samples: n_samples,
            wall_ms: round.wall_ms,
            samples_per_sec: throughput_per_sec(n_samples, round.wall_ms / 1000.0),
        });
    }
}

/// An online-inference telemetry event, the serving-side counterpart of
/// [`TrainEvent`]. A separate vocabulary (and separate [`InferObserver`]
/// trait) keeps the two streams independently versioned and leaves every
/// existing `TrainObserver` implementation's exhaustive match untouched.
///
/// JSONL serialization shares [`SCHEMA_VERSION`] and the same
/// conventions: `"v"` + `"event"` discriminator, non-finite numbers as
/// `null`, model fingerprints as 16-digit hex strings.
#[derive(Debug, Clone, PartialEq)]
pub enum InferEvent {
    /// The inference engine started consuming a stream.
    StreamStart {
        /// Weight fingerprint of the initially active model.
        model_fingerprint: u64,
        /// Classes the model separates.
        n_classes: usize,
    },
    /// One micro-batch of flows was classified.
    BatchEnd {
        /// Dataplane lane that ran the batch (0 outside sharded mode).
        shard: usize,
        /// 0-based batch index within the shard's stream.
        batch: usize,
        /// Flows in the batch.
        size: usize,
        /// Flows still waiting for classification after this batch.
        queue_depth: usize,
        /// Flows in this batch rejected as unknown by the engine's
        /// open-world threshold (0 whenever rejection is disabled).
        rejected: usize,
        /// Forward-pass wall-clock, in milliseconds.
        wall_ms: f64,
        /// Classification throughput: `size / wall`.
        samples_per_sec: f64,
    },
    /// The flow tracker dropped a flow without classifying it.
    FlowEvicted {
        /// Dataplane lane that owned the flow (0 outside sharded mode).
        shard: usize,
        /// The evicted flow's identifier.
        flow_id: u64,
        /// Packets the flow had accumulated when dropped.
        pkts: usize,
        /// Why, and whether the flow had ever been classified: an
        /// `-unclassified` suffix marks flows evicted before any
        /// classification, which open-world unknown-rate math must not
        /// double count against the rejection counters.
        /// `"idle-unclassified"` / `"cap-unclassified"` (never
        /// classified; the overwhelmingly common case) vs `"idle"` /
        /// `"cap"` (a completed flow's residue evicted later).
        reason: &'static str,
    },
    /// The model registry atomically replaced the active model.
    ModelSwapped {
        /// Weight fingerprint of the model being retired.
        old_fingerprint: u64,
        /// Weight fingerprint of the model now active.
        new_fingerprint: u64,
        /// What initiated the swap: `"push-model"` (operator request
        /// over the control socket), `"scheduled"` (replay-scripted), or
        /// `"drift"` (auto-retrain after a drift verdict).
        reason: &'static str,
    },
    /// The drift monitor scored one class at a stream-time checkpoint.
    /// Classes skipped in a check (too few live samples, no reference)
    /// emit nothing — absence of a `drift_check` line for a class is
    /// itself the "quiet class" signal.
    DriftCheck {
        /// Stream time (packet timestamp) of the check.
        at_ts: f64,
        /// The predicted class whose live window was scored.
        class: usize,
        /// L1 distance between the live-window KDE and the reference
        /// KDE, in `[0, 2]`.
        score: f64,
        /// The configured verdict threshold.
        threshold: f64,
        /// Live samples in the window the score was computed from.
        samples: usize,
    },
    /// Sustained divergence crossed the threshold: a drift verdict.
    DriftDetected {
        /// Stream time (packet timestamp) of the verdict.
        at_ts: f64,
        /// Packet index into the stream at the verdict — the replayable
        /// determinism anchor (same trace ⇒ same index).
        packet: usize,
        /// The class that diverged.
        class: usize,
        /// The class's L1 score at the verdict check.
        score: f64,
        /// The configured verdict threshold.
        threshold: f64,
        /// Consecutive over-threshold checks that sustained the verdict.
        sustained: usize,
    },
    /// A background auto-retrain began assembling and fitting.
    RetrainStart {
        /// The drifted class that triggered the retrain.
        trigger_class: usize,
        /// Labeled flows in the fine-tune set.
        flows: usize,
    },
    /// The background auto-retrain finished (before any swap).
    RetrainEnd {
        /// Whether the candidate passed held-back validation and will be
        /// hot-swapped.
        accepted: bool,
        /// Candidate accuracy on the held-back slice.
        val_accuracy: f64,
        /// Fine-tune epochs actually run.
        epochs: usize,
        /// Background wall-clock, in milliseconds (observability only —
        /// never drives behavior).
        wall_ms: f64,
    },
    /// The stream drained.
    StreamEnd {
        /// Flows classified.
        flows: usize,
        /// Micro-batches run.
        batches: usize,
        /// Flows evicted unclassified.
        evicted: usize,
        /// Whole-stream wall-clock, in milliseconds.
        wall_ms: f64,
    },
    /// A serving daemon bound its control socket and began accepting
    /// requests.
    DaemonStart {
        /// The control socket's path (or a test-harness description).
        socket: String,
    },
    /// The daemon processed one non-packet control request. Per-packet
    /// requests are deliberately not logged — a trace would drown the
    /// event stream, and packets are already observable through
    /// `infer_batch_end`.
    ControlRequest {
        /// The request's wire name (`"push-model"`, `"stats"`, ...).
        cmd: &'static str,
    },
    /// A `set-config` request changed one serving knob.
    ConfigChanged {
        /// The knob: `"sparsity_threshold"`, `"max_batch"`,
        /// `"max_wait_s"`, `"idle_timeout_s"`, `"max_flows"`,
        /// `"pending_cap"` or `"reject_below"`.
        field: &'static str,
        /// The new value, widened to f64.
        value: f64,
    },
    /// The daemon finished its graceful shutdown (after `stream_end`).
    DaemonShutdown,
}

impl InferEvent {
    /// The event as one line of schema-version-[`SCHEMA_VERSION`] JSON
    /// (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"v\":{SCHEMA_VERSION},");
        match self {
            InferEvent::StreamStart {
                model_fingerprint,
                n_classes,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"stream_start\",\"model\":\"{model_fingerprint:016x}\",\
                     \"n_classes\":{n_classes}"
                );
            }
            InferEvent::BatchEnd {
                shard,
                batch,
                size,
                queue_depth,
                rejected,
                wall_ms,
                samples_per_sec,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"infer_batch_end\",\"shard\":{shard},\"batch\":{batch},\
                     \"size\":{size},\"queue_depth\":{queue_depth},\
                     \"rejected\":{rejected},\"wall_ms\":"
                );
                push_num(&mut s, *wall_ms);
                s.push_str(",\"samples_per_sec\":");
                push_num(&mut s, *samples_per_sec);
            }
            InferEvent::FlowEvicted {
                shard,
                flow_id,
                pkts,
                reason,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"flow_evicted\",\"shard\":{shard},\"flow_id\":{flow_id},\
                     \"pkts\":{pkts},\"reason\":\"{reason}\""
                );
            }
            InferEvent::ModelSwapped {
                old_fingerprint,
                new_fingerprint,
                reason,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"model_swapped\",\"old\":\"{old_fingerprint:016x}\",\
                     \"new\":\"{new_fingerprint:016x}\",\"reason\":\"{reason}\""
                );
            }
            InferEvent::DriftCheck {
                at_ts,
                class,
                score,
                threshold,
                samples,
            } => {
                let _ = write!(s, "\"event\":\"drift_check\",\"class\":{class},\"at_ts\":");
                push_num(&mut s, *at_ts);
                s.push_str(",\"score\":");
                push_num(&mut s, *score);
                s.push_str(",\"threshold\":");
                push_num(&mut s, *threshold);
                let _ = write!(s, ",\"samples\":{samples}");
            }
            InferEvent::DriftDetected {
                at_ts,
                packet,
                class,
                score,
                threshold,
                sustained,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"drift_detected\",\"class\":{class},\"packet\":{packet},\
                     \"sustained\":{sustained},\"at_ts\":"
                );
                push_num(&mut s, *at_ts);
                s.push_str(",\"score\":");
                push_num(&mut s, *score);
                s.push_str(",\"threshold\":");
                push_num(&mut s, *threshold);
            }
            InferEvent::RetrainStart {
                trigger_class,
                flows,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"retrain_start\",\"trigger_class\":{trigger_class},\
                     \"flows\":{flows}"
                );
            }
            InferEvent::RetrainEnd {
                accepted,
                val_accuracy,
                epochs,
                wall_ms,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"retrain_end\",\"accepted\":{accepted},\"epochs\":{epochs},\
                     \"val_accuracy\":"
                );
                push_num(&mut s, *val_accuracy);
                s.push_str(",\"wall_ms\":");
                push_num(&mut s, *wall_ms);
            }
            InferEvent::StreamEnd {
                flows,
                batches,
                evicted,
                wall_ms,
            } => {
                let _ = write!(
                    s,
                    "\"event\":\"stream_end\",\"flows\":{flows},\"batches\":{batches},\
                     \"evicted\":{evicted},\"wall_ms\":"
                );
                push_num(&mut s, *wall_ms);
            }
            InferEvent::DaemonStart { socket } => {
                s.push_str("\"event\":\"daemon_start\",\"socket\":");
                push_json_str(&mut s, socket);
            }
            InferEvent::ControlRequest { cmd } => {
                let _ = write!(s, "\"event\":\"control_request\",\"cmd\":\"{cmd}\"");
            }
            InferEvent::ConfigChanged { field, value } => {
                let _ = write!(
                    s,
                    "\"event\":\"config_changed\",\"field\":\"{field}\",\"value\":"
                );
                push_num(&mut s, *value);
            }
            InferEvent::DaemonShutdown => {
                s.push_str("\"event\":\"shutdown\"");
            }
        }
        s.push('}');
        s
    }
}

/// A sink for [`InferEvent`]s. Like [`TrainObserver`], strictly
/// observability-only: predictions are bit-identical with or without a
/// sink attached.
pub trait InferObserver {
    /// Receives one event, synchronously from the serving loop.
    fn infer_event(&mut self, event: &InferEvent);
}

impl InferObserver for Noop {
    fn infer_event(&mut self, _event: &InferEvent) {}
}

impl InferObserver for JsonlSink {
    fn infer_event(&mut self, event: &InferEvent) {
        let mut line = event.to_json_line();
        line.push('\n');
        let _ = self.file.write_all(line.as_bytes());
    }
}

/// Collects inference events in memory — the test sink.
#[derive(Debug, Default)]
pub struct InferRecorder {
    /// Every event received, in order.
    pub events: Vec<InferEvent>,
}

impl InferRecorder {
    /// An empty recorder.
    pub fn new() -> InferRecorder {
        InferRecorder::default()
    }

    /// The `BatchEnd` events, in order.
    pub fn batch_ends(&self) -> Vec<&InferEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, InferEvent::BatchEnd { .. }))
            .collect()
    }
}

impl InferObserver for InferRecorder {
    fn infer_event(&mut self, event: &InferEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_have_version_and_discriminator() {
        let e = TrainEvent::EpochEnd {
            epoch: 3,
            train_loss: 0.5,
            val_loss: Some(0.625),
            samples: 96,
            wall_ms: 12.5,
            samples_per_sec: 7680.0,
        };
        let line = e.to_json_line();
        assert!(
            line.starts_with("{\"v\":1,\"event\":\"epoch_end\""),
            "{line}"
        );
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"train_loss\":0.5"), "{line}");
        assert!(line.contains("\"val_loss\":0.625"), "{line}");
        assert!(line.contains("\"samples\":96"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn optional_fields_serialize_as_null() {
        let e = TrainEvent::EpochEnd {
            epoch: 1,
            train_loss: 1.0,
            val_loss: None,
            samples: 8,
            wall_ms: 1.0,
            samples_per_sec: 8000.0,
        };
        assert!(e.to_json_line().contains("\"val_loss\":null"));
        let e = TrainEvent::RunEnd {
            epochs: 0,
            final_train_loss: 0.0,
            best_epoch: None,
            wall_ms: 0.0,
        };
        assert!(e.to_json_line().contains("\"best_epoch\":null"));
        let e = TrainEvent::TaskEnd {
            task: 0,
            completed: 1,
            total: 2,
            reused: true,
            wall_ms: 3.0,
            eta_ms: None,
        };
        let line = e.to_json_line();
        assert!(line.contains("\"eta_ms\":null"), "{line}");
        assert!(line.contains("\"reused\":true"), "{line}");
    }

    #[test]
    fn throughput_survives_zero_elapsed() {
        // Regression: zero-elapsed intervals (coarse CI clocks) used to
        // be clamped to a nanosecond, emitting absurd finite rates —
        // and a literal division would emit inf/NaN. Both degenerate
        // shapes must yield 0.0.
        assert_eq!(throughput_per_sec(1000, 0.0), 0.0);
        assert_eq!(throughput_per_sec(0, 0.0), 0.0, "0/0 must not be NaN");
        assert_eq!(throughput_per_sec(1000, -1.0), 0.0);
        assert_eq!(throughput_per_sec(1000, f64::NAN), 0.0);
        assert_eq!(throughput_per_sec(1000, f64::INFINITY), 0.0);
        assert_eq!(
            throughput_per_sec(1000, MIN_THROUGHPUT_ELAPSED_SECS / 2.0),
            0.0
        );
        // Real intervals divide through unchanged.
        assert_eq!(throughput_per_sec(1000, 2.0), 500.0);
    }

    #[test]
    fn gbdt_observer_emits_finite_rate_on_zero_wall() {
        let mut rec = Recorder::default();
        {
            let mut cb = gbdt_round_observer(&mut rec, 512);
            cb(&gbdt::BoostRound {
                round: 1,
                n_rounds: 1,
                train_logloss: 0.7,
                wall_ms: 0.0,
            });
        }
        let [TrainEvent::EpochEnd {
            samples_per_sec, ..
        }] = rec.events.as_slice()
        else {
            panic!("expected one EpochEnd")
        };
        assert_eq!(*samples_per_sec, 0.0);
    }

    #[test]
    fn non_finite_numbers_become_null_not_invalid_json() {
        let e = TrainEvent::EpochEnd {
            epoch: 1,
            train_loss: f64::NAN,
            val_loss: Some(f64::INFINITY),
            samples: 8,
            wall_ms: 1.0,
            samples_per_sec: 1.0,
        };
        let line = e.to_json_line();
        assert!(line.contains("\"train_loss\":null"), "{line}");
        assert!(line.contains("\"val_loss\":null"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("tcbench_telemetry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.event(&TrainEvent::RunStart {
                trainer: "supervised",
                samples: 4,
                max_epochs: 2,
                start_epoch: 0,
            });
            sink.event(&TrainEvent::RunEnd {
                epochs: 2,
                final_train_loss: 0.25,
                best_epoch: Some(2),
                wall_ms: 5.0,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"run_start\""));
        assert!(lines[1].contains("\"event\":\"run_end\""));
        // Append mode accumulates instead of truncating.
        {
            let mut sink = JsonlSink::append(&path).unwrap();
            sink.event(&TrainEvent::RunStart {
                trainer: "supervised",
                samples: 4,
                max_epochs: 4,
                start_epoch: 2,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().last().unwrap().contains("\"start_epoch\":2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_fans_out_in_order() {
        // Two recorders behind one tee receive identical streams.
        struct Probe(std::sync::Arc<Mutex<Vec<String>>>, &'static str);
        impl TrainObserver for Probe {
            fn event(&mut self, event: &TrainEvent) {
                self.0
                    .lock()
                    .push(format!("{}:{:?}", self.1, std::mem::discriminant(event)));
            }
        }
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        let mut tee = Tee::new();
        tee.push(Box::new(Probe(log.clone(), "a")));
        tee.push(Box::new(Probe(log.clone(), "b")));
        assert_eq!(tee.len(), 2);
        tee.event(&TrainEvent::RunEnd {
            epochs: 1,
            final_train_loss: 0.0,
            best_epoch: None,
            wall_ms: 0.0,
        });
        let log = log.lock();
        assert_eq!(log.len(), 2);
        assert!(log[0].starts_with("a:") && log[1].starts_with("b:"));
    }

    #[test]
    fn campaign_progress_counts_and_eta() {
        let progress = CampaignProgress::new(4, Box::new(Noop));
        progress.task_done(0, true);
        assert_eq!(progress.counts(), (1, 1, 0));
        progress.task_done(1, false);
        progress.task_done(2, false);
        assert_eq!(progress.counts(), (3, 1, 2));

        let mut rec = Recorder::new();
        let progress = CampaignProgress::new(2, Box::new(Noop));
        // Route events into a local recorder via a tiny adapter sink.
        struct Fwd(std::sync::Arc<Mutex<Recorder>>);
        impl TrainObserver for Fwd {
            fn event(&mut self, event: &TrainEvent) {
                self.0.lock().event(event);
            }
        }
        let shared = std::sync::Arc::new(Mutex::new(Recorder::new()));
        let progress2 = CampaignProgress::new(2, Box::new(Fwd(shared.clone())));
        progress2.task_done(0, true); // reused: no computed tasks yet → no ETA
        progress2.task_done(1, false);
        let events = shared.lock().events.clone();
        match &events[0] {
            TrainEvent::TaskEnd {
                reused,
                eta_ms,
                completed,
                total,
                ..
            } => {
                assert!(*reused);
                assert_eq!((*completed, *total), (1, 2));
                assert!(eta_ms.is_none(), "no computed task yet → no ETA");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[1] {
            TrainEvent::TaskEnd {
                reused,
                eta_ms,
                completed,
                ..
            } => {
                assert!(!*reused);
                assert_eq!(*completed, 2);
                // All tasks done → zero remaining → ETA exactly 0.
                assert_eq!(*eta_ms, Some(0.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        rec.event(&TrainEvent::RunEnd {
            epochs: 0,
            final_train_loss: 0.0,
            best_epoch: None,
            wall_ms: 0.0,
        });
        drop(progress);
    }

    #[test]
    fn infer_events_serialize_with_shared_schema() {
        let e = InferEvent::BatchEnd {
            shard: 1,
            batch: 2,
            size: 7,
            queue_depth: 3,
            rejected: 2,
            wall_ms: 1.25,
            samples_per_sec: 5600.0,
        };
        let line = e.to_json_line();
        assert!(
            line.starts_with("{\"v\":1,\"event\":\"infer_batch_end\""),
            "{line}"
        );
        assert!(line.contains("\"shard\":1"), "{line}");
        assert!(line.contains("\"queue_depth\":3"), "{line}");
        assert!(line.contains("\"rejected\":2"), "{line}");
        let e = InferEvent::ModelSwapped {
            old_fingerprint: 0xabc,
            new_fingerprint: 0xdef,
            reason: "push-model",
        };
        let line = e.to_json_line();
        assert!(line.contains("\"old\":\"0000000000000abc\""), "{line}");
        assert!(line.contains("\"new\":\"0000000000000def\""), "{line}");
        assert!(line.contains("\"reason\":\"push-model\""), "{line}");
        let e = InferEvent::FlowEvicted {
            shard: 0,
            flow_id: 9,
            pkts: 4,
            reason: "idle-unclassified",
        };
        let line = e.to_json_line();
        assert!(line.contains("\"reason\":\"idle-unclassified\""), "{line}");
        assert!(line.contains("\"shard\":0"), "{line}");
    }

    #[test]
    fn infer_recorder_and_jsonl_sink_accept_infer_events() {
        let mut rec = InferRecorder::new();
        rec.infer_event(&InferEvent::StreamStart {
            model_fingerprint: 1,
            n_classes: 5,
        });
        rec.infer_event(&InferEvent::BatchEnd {
            shard: 0,
            batch: 0,
            size: 4,
            queue_depth: 0,
            rejected: 0,
            wall_ms: 1.0,
            samples_per_sec: 4000.0,
        });
        rec.infer_event(&InferEvent::StreamEnd {
            flows: 4,
            batches: 1,
            evicted: 0,
            wall_ms: 2.0,
        });
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.batch_ends().len(), 1);

        let dir = std::env::temp_dir().join(format!("tcbench_infer_tel_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("infer.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for e in &rec.events {
                sink.infer_event(e);
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with("{\"v\":1,")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn daemon_events_serialize_with_shared_schema() {
        let e = InferEvent::DaemonStart {
            socket: "/tmp/tcb.sock".into(),
        };
        let line = e.to_json_line();
        assert!(
            line.starts_with("{\"v\":1,\"event\":\"daemon_start\""),
            "{line}"
        );
        assert!(line.contains("\"socket\":\"/tmp/tcb.sock\""), "{line}");
        // Socket paths are runtime strings and must be escaped.
        let e = InferEvent::DaemonStart {
            socket: "odd\"path\\with\nnoise".into(),
        };
        let line = e.to_json_line();
        assert!(line.contains("odd\\\"path\\\\with\\nnoise"), "{line}");

        let e = InferEvent::ControlRequest { cmd: "push-model" };
        assert_eq!(
            e.to_json_line(),
            "{\"v\":1,\"event\":\"control_request\",\"cmd\":\"push-model\"}"
        );
        let e = InferEvent::ConfigChanged {
            field: "max_batch",
            value: 8.0,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"v\":1,\"event\":\"config_changed\",\"field\":\"max_batch\",\"value\":8".to_owned()
                + "}"
        );
        assert_eq!(
            InferEvent::DaemonShutdown.to_json_line(),
            "{\"v\":1,\"event\":\"shutdown\"}"
        );
    }

    #[test]
    fn drift_events_serialize_with_shared_schema() {
        let e = InferEvent::DriftCheck {
            at_ts: 30.0,
            class: 1,
            score: 0.25,
            threshold: 0.6,
            samples: 40,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"v\":1,\"event\":\"drift_check\",\"class\":1,\"at_ts\":30,\
             \"score\":0.25,\"threshold\":0.6,\"samples\":40}"
        );
        let e = InferEvent::DriftDetected {
            at_ts: 90.0,
            packet: 1234,
            class: 1,
            score: 1.5,
            threshold: 0.6,
            sustained: 2,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"v\":1,\"event\":\"drift_detected\",\"class\":1,\"packet\":1234,\
             \"sustained\":2,\"at_ts\":90,\"score\":1.5,\"threshold\":0.6}"
        );
        let e = InferEvent::RetrainStart {
            trigger_class: 1,
            flows: 120,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"v\":1,\"event\":\"retrain_start\",\"trigger_class\":1,\"flows\":120}"
        );
        let e = InferEvent::RetrainEnd {
            accepted: true,
            val_accuracy: 0.875,
            epochs: 3,
            wall_ms: 42.5,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"v\":1,\"event\":\"retrain_end\",\"accepted\":true,\"epochs\":3,\
             \"val_accuracy\":0.875,\"wall_ms\":42.5}"
        );
        // Non-finite scores degrade to null like every other number.
        let e = InferEvent::DriftCheck {
            at_ts: 1.0,
            class: 0,
            score: f64::NAN,
            threshold: 0.6,
            samples: 0,
        };
        assert!(e.to_json_line().contains("\"score\":null"));
    }

    #[test]
    fn progress_sink_formats_without_panicking() {
        let mut sink = ProgressSink::to(Box::new(io::sink()));
        sink.event(&TrainEvent::RunStart {
            trainer: "simclr",
            samples: 10,
            max_epochs: 5,
            start_epoch: 0,
        });
        sink.event(&TrainEvent::BatchEnd {
            epoch: 1,
            batch: 0,
            loss: 1.0,
            samples: 4,
        });
        sink.event(&TrainEvent::EpochEnd {
            epoch: 1,
            train_loss: 1.0,
            val_loss: Some(2.0),
            samples: 10,
            wall_ms: 3.0,
            samples_per_sec: 3333.0,
        });
        sink.event(&TrainEvent::RunEnd {
            epochs: 1,
            final_train_loss: 1.0,
            best_epoch: Some(1),
            wall_ms: 3.0,
        });
        sink.event(&TrainEvent::TaskEnd {
            task: 0,
            completed: 1,
            total: 1,
            reused: false,
            wall_ms: 3.0,
            eta_ms: Some(0.0),
        });
    }
}
