//! # tcbench — experiment orchestration for the flowpic replication
//!
//! This crate ties the substrates together into the paper's modeling
//! pipeline:
//!
//! * [`arch`] — the exact network architectures of the paper's App. C
//!   listings: supervised LeNet-5 (mini) and full-flowpic variants, the
//!   SimCLR pre-training networks (projection dim 30/84), and the
//!   fine-tune network with its `Identity`-masked head;
//! * [`data`] — flows → training tensors: augmented training sets (each
//!   augmentation applied 10× as in the paper), batching, shuffling;
//! * [`early_stop`] — the paper's early-stopping rules (validation loss
//!   patience 5 / min-delta 0.001 supervised; top-5 contrastive accuracy
//!   patience 3 for SimCLR; training loss patience 5 fine-tuning);
//! * [`supervised`] — the supervised trainer (lr 0.001, batch 32);
//! * [`simclr`] — SimCLR pre-training (NT-Xent, temperature 0.07) and
//!   few-shot fine-tuning (lr 0.01) with a frozen extractor;
//! * [`regression`] — the Rezaei & Liu reproduction (paper App. D.3):
//!   subflow-sampling regression pre-training plus classifier fine-tune;
//! * [`track`] — an AimStack-like in-process run tracker;
//! * [`campaign`] — a crossbeam worker pool that fans experiment grids
//!   out over CPU cores;
//! * [`report`] — aligned-column table rendering for the bench binaries.

pub mod arch;
pub mod byol;
pub mod campaign;
pub mod data;
pub mod early_stop;
pub mod refdist;
pub mod regression;
pub mod report;
pub mod simclr;
pub mod supervised;
pub mod telemetry;
pub mod timeseries;
pub mod track;

pub use data::FlowpicDataset;
pub use supervised::{EvalResult, SupervisedTrainer, TrainConfig};
