//! SimCLR contrastive pre-training and few-shot fine-tuning.
//!
//! Paper Sec. 4.4: pre-training contrasts two augmented views of each
//! sample in a "double batch" of 32 flows with the NT-Xent loss
//! (temperature 0.07, Adam lr 0.001), early-stopped on the contrastive
//! top-5 accuracy (patience 3). Fine-tuning freezes the pre-trained
//! extractor, replaces the projection head with a fresh classifier
//! (App. C Listing 5) and trains it on up to 10 labeled samples per class
//! (lr 0.01, patience 5 on the training loss).

use crate::arch::{finetune_net, simclr_net, EXTRACTOR_DEPTH};
use crate::data::FlowpicDataset;
use crate::early_stop::EarlyStopper;
use crate::supervised::{SupervisedTrainer, TrainConfig};
use crate::telemetry::{throughput_per_sec, Noop, TrainEvent, TrainObserver};
use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use nettensor::engine::BatchEngine;
use nettensor::loss::NtXent;
use nettensor::optim::{Adam, Optimizer};
use nettensor::{Sequential, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use trafficgen::types::Dataset;

/// SimCLR pre-training hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimClrConfig {
    /// NT-Xent temperature (paper: 0.07).
    pub temperature: f32,
    /// Learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Flows per mini-batch; each contributes two views → a "double batch"
    /// (paper: 32).
    pub batch_size: usize,
    /// Epoch safety cap.
    pub max_epochs: usize,
    /// Early-stopping patience on the top-5 contrastive accuracy
    /// (paper: 3).
    pub patience: usize,
    /// Projection head output dimension (paper: 30; ablated 84).
    pub proj_dim: usize,
    /// Whether the network uses dropout (the replication's Table 5
    /// ablation; its conclusion: without is better on `human`).
    pub dropout: bool,
    /// Seed for initialization, shuffling and view augmentation.
    pub seed: u64,
    /// Threads sharding each double batch's forward/backward (0 = all
    /// cores). The NT-Xent loss itself couples the whole double batch and
    /// runs single-threaded; results are bit-identical for any value.
    pub batch_workers: usize,
}

impl SimClrConfig {
    /// The paper's configuration.
    pub fn paper(seed: u64) -> SimClrConfig {
        SimClrConfig {
            temperature: 0.07,
            learning_rate: 0.001,
            batch_size: 32,
            max_epochs: 30,
            patience: 3,
            proj_dim: 30,
            dropout: false,
            seed,
            batch_workers: 1,
        }
    }
}

/// Summary of a pre-training run.
#[derive(Debug, Clone, Serialize)]
pub struct PretrainSummary {
    /// Epochs run.
    pub epochs: usize,
    /// Final epoch's mean NT-Xent loss.
    pub final_loss: f64,
    /// Best top-5 contrastive accuracy reached. The returned network
    /// carries the weights of exactly that epoch (best-weight
    /// restoration), not the stopping epoch's.
    pub best_top5: f64,
}

/// Pre-trains a SimCLR network on the unlabeled flows at `indices`,
/// producing the network (extractor + projection head) and a summary.
pub fn pretrain(
    dataset: &Dataset,
    indices: &[usize],
    pair: ViewPair,
    fpcfg: &FlowpicConfig,
    norm: Normalization,
    config: &SimClrConfig,
) -> (Sequential, PretrainSummary) {
    pretrain_observed(dataset, indices, pair, fpcfg, norm, config, &mut Noop)
}

/// [`pretrain`] with a telemetry observer. Events count anchors
/// (augmented views, 2× the flow count) as samples; telemetry is
/// observability-only — results are bit-identical with or without an
/// observer.
pub fn pretrain_observed(
    dataset: &Dataset,
    indices: &[usize],
    pair: ViewPair,
    fpcfg: &FlowpicConfig,
    norm: Normalization,
    config: &SimClrConfig,
    obs: &mut dyn TrainObserver,
) -> (Sequential, PretrainSummary) {
    assert!(indices.len() >= 2, "SimCLR needs at least 2 flows");
    let run_start = std::time::Instant::now();
    let mut net = simclr_net(
        fpcfg.resolution,
        config.proj_dim,
        config.dropout,
        config.seed,
    );
    let mut opt = Adam::new(config.learning_rate);
    let engine = BatchEngine::new(config.batch_workers);
    let mut grads = net.grad_store();
    let mut step = 0u64;
    let loss_fn = NtXent::new(config.temperature);
    let mut stopper =
        EarlyStopper::new(crate::early_stop::StopMode::Maximize, config.patience, 0.0);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x51AC_1234);
    let res = fpcfg.resolution;

    obs.event(&TrainEvent::RunStart {
        trainer: "simclr",
        samples: indices.len(),
        max_epochs: config.max_epochs,
        start_epoch: 0,
    });

    let mut epochs = 0;
    let mut final_loss = 0f64;
    let mut best: Option<nettensor::model::Weights> = None;
    let mut best_epoch = None;
    for epoch in 0..config.max_epochs {
        epochs = epoch + 1;
        let mut order = indices.to_vec();
        order.shuffle(&mut rng);
        let epoch_start = std::time::Instant::now();
        let samples_before = engine.samples_processed();
        // Epoch metrics are anchor-weighted (each flow contributes two
        // augmented views = two NT-Xent anchors): the ragged last batch
        // counts by its size, not as a full batch.
        let mut epoch_loss = 0f64;
        let mut epoch_top5 = 0f64;
        let mut n_anchors = 0usize;
        for (batch, chunk) in order.chunks(config.batch_size).enumerate() {
            if chunk.len() < 2 {
                continue; // NT-Xent needs at least 2 pairs
            }
            // Build the double batch: first half view A, second half view B.
            let b = chunk.len();
            let mut data = Vec::with_capacity(2 * b * res * res);
            let mut view_b = Vec::with_capacity(b * res * res);
            for &i in chunk {
                let (va, vb) = pair.views(&dataset.flows[i].pkts, fpcfg, &mut rng);
                data.extend(va.to_input(norm));
                view_b.extend(vb.to_input(norm));
            }
            data.extend(view_b);
            let x = Tensor::new(&[2 * b, 1, res, res], data);
            step += 1;
            // Sharded forward; the batch-coupled NT-Xent runs on the full
            // concatenated projections; sharded backward; ordered reduce.
            let (z, tapes) = engine.forward(&net, &x, true, step);
            let out = loss_fn.eval(&z);
            grads.zero();
            engine.backward(&net, &tapes, &out.grad, &mut grads);
            engine.commit(&mut net, &tapes);
            opt.step(&mut net, &grads);
            let anchors = 2 * b;
            epoch_loss += out.loss as f64 * anchors as f64;
            epoch_top5 += out.top5_accuracy * anchors as f64;
            n_anchors += anchors;
            obs.event(&TrainEvent::BatchEnd {
                epoch: epochs,
                batch,
                loss: out.loss as f64,
                samples: anchors,
            });
        }
        final_loss = epoch_loss / n_anchors.max(1) as f64;
        let top5 = epoch_top5 / n_anchors.max(1) as f64;
        let epoch_samples = (engine.samples_processed() - samples_before) as usize;
        let wall = epoch_start.elapsed().as_secs_f64();
        obs.event(&TrainEvent::EpochEnd {
            epoch: epochs,
            train_loss: final_loss,
            val_loss: None,
            samples: epoch_samples,
            wall_ms: wall * 1000.0,
            samples_per_sec: throughput_per_sec(epoch_samples, wall),
        });
        let verdict = stopper.observe(top5);
        if verdict.improved {
            best = Some(net.export_weights());
            best_epoch = Some(epochs);
        }
        if verdict.stop {
            break;
        }
    }
    // Early stopping selects the best top-5 epoch; return its weights,
    // not the stopping epoch's (patience epochs past the optimum).
    if let Some(best) = &best {
        net.import_weights(best);
    }
    obs.event(&TrainEvent::RunEnd {
        epochs,
        final_train_loss: final_loss,
        best_epoch,
        wall_ms: run_start.elapsed().as_secs_f64() * 1000.0,
    });
    (
        net,
        PretrainSummary {
            epochs,
            final_loss,
            best_top5: stopper.best().unwrap_or(0.0),
        },
    )
}

/// Fine-tunes a classifier on top of a pre-trained SimCLR network:
/// builds the Listing 5 network, transplants and freezes the extractor,
/// and trains the final linear layer on `labeled` (paper: 10 samples per
/// class, lr 0.01, patience 5 on the training loss).
///
/// `batch_workers` shards each mini-batch like everywhere else (0 = all
/// cores) — a throughput knob only, bit-identical results at any value.
pub fn fine_tune(
    pretrained: &Sequential,
    labeled: &FlowpicDataset,
    seed: u64,
    batch_workers: usize,
) -> Sequential {
    fine_tune_observed(pretrained, labeled, seed, batch_workers, &mut Noop)
}

/// [`fine_tune`] with a telemetry observer (events carry the trainer
/// label `"fine-tune"`). Observability-only: bit-identical to
/// [`fine_tune`].
pub fn fine_tune_observed(
    pretrained: &Sequential,
    labeled: &FlowpicDataset,
    seed: u64,
    batch_workers: usize,
    obs: &mut dyn TrainObserver,
) -> Sequential {
    let mut net = finetune_net(labeled.res, labeled.n_classes, seed);
    net.copy_prefix_weights_from(pretrained, EXTRACTOR_DEPTH);
    net.freeze_prefix(EXTRACTOR_DEPTH);
    let trainer = SupervisedTrainer::new(TrainConfig {
        learning_rate: 0.01,
        batch_size: 32,
        max_epochs: 50,
        patience: 5,
        min_delta: 0.001,
        seed,
        batch_workers,
    });
    // Paper: fine-tuning early-stops on the *training* loss.
    trainer
        .train_impl(&mut net, labeled, None, None, "fine-tune", obs)
        .expect("training without a checkpoint spec cannot fail on IO");
    net
}

/// Selects up to `per_class` flow indices per class from `pool`
/// (deterministically shuffled) — the paper's few-shot labeled subset.
pub fn few_shot_subset(
    dataset: &Dataset,
    pool: &[usize],
    per_class: usize,
    seed: u64,
) -> Vec<usize> {
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for &i in pool {
        by_class[dataset.flows[i].class as usize].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for idxs in &mut by_class {
        idxs.shuffle(&mut rng);
        out.extend(idxs.iter().copied().take(per_class));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn quick_simclr(seed: u64) -> SimClrConfig {
        SimClrConfig {
            max_epochs: 4,
            batch_size: 16,
            ..SimClrConfig::paper(seed)
        }
    }

    #[test]
    fn pretrain_improves_contrastive_accuracy() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [16; 5];
        let ds = UcDavisSim::new(cfg).generate(7);
        let idx = ds.partition_indices(Partition::Pretraining);
        let fpcfg = FlowpicConfig::mini();
        let (_net, summary) = pretrain(
            &ds,
            &idx,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &quick_simclr(1),
        );
        assert!(summary.epochs >= 1);
        assert!(summary.final_loss.is_finite());
        // With 16-pair batches (30 negatives), random top-5 ≈ 16 %; a
        // trained extractor must do much better.
        assert!(summary.best_top5 > 0.4, "top5 {}", summary.best_top5);
    }

    #[test]
    fn fine_tune_beats_chance_with_10_shots() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [20; 5];
        cfg.script_per_class = [8; 5];
        let ds = UcDavisSim::new(cfg).generate(9);
        let fpcfg = FlowpicConfig::mini();
        let pre_idx = ds.partition_indices(Partition::Pretraining);
        let (pre, _) = pretrain(
            &ds,
            &pre_idx,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &quick_simclr(2),
        );
        let shots = few_shot_subset(&ds, &pre_idx, 10, 3);
        let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, Normalization::LogMax);
        let tuned = fine_tune(&pre, &labeled, 4, 1);
        let test_idx = ds.partition_indices(Partition::Script);
        let test = FlowpicDataset::from_flows(&ds, &test_idx, &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));
        let eval = trainer.evaluate(&tuned, &test);
        assert!(
            eval.accuracy > 0.4,
            "accuracy {} (chance = 0.2)",
            eval.accuracy
        );
    }

    #[test]
    fn few_shot_subset_respects_per_class() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(1);
        let pool = ds.partition_indices(Partition::Pretraining);
        let subset = few_shot_subset(&ds, &pool, 3, 5);
        assert_eq!(subset.len(), 15);
        for class in 0..5u16 {
            let n = subset
                .iter()
                .filter(|&&i| ds.flows[i].class == class)
                .count();
            assert_eq!(n, 3);
        }
        // Deterministic.
        assert_eq!(subset, few_shot_subset(&ds, &pool, 3, 5));
        assert_ne!(subset, few_shot_subset(&ds, &pool, 3, 6));
    }

    #[test]
    fn few_shot_subset_caps_at_class_size() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(1);
        let pool = ds.partition_indices(Partition::Human); // 4 per class
        let subset = few_shot_subset(&ds, &pool, 10, 5);
        assert_eq!(subset.len(), 20);
    }

    #[test]
    fn fine_tune_is_bit_identical_across_worker_counts() {
        // The satellite regression: the caller's worker count now reaches
        // the fine-tuning trainer, and — per the engine's determinism
        // contract — must not change a single weight bit.
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [12; 5];
        let ds = UcDavisSim::new(cfg).generate(17);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let (pre, _) = pretrain(
            &ds,
            &idx,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &quick_simclr(8),
        );
        let shots = few_shot_subset(&ds, &idx, 6, 9);
        let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, Normalization::LogMax);
        let w1 = fine_tune(&pre, &labeled, 10, 1).export_weights();
        let w4 = fine_tune(&pre, &labeled, 10, 4).export_weights();
        assert_eq!(w1, w4, "fine_tune diverged between 1 and 4 workers");
    }

    #[test]
    fn frozen_extractor_unchanged_by_fine_tune() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [10; 5];
        let ds = UcDavisSim::new(cfg).generate(4);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let (pre, _) = pretrain(
            &ds,
            &idx,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &quick_simclr(5),
        );
        let shots = few_shot_subset(&ds, &idx, 5, 1);
        let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, Normalization::LogMax);
        let tuned = fine_tune(&pre, &labeled, 6, 1);
        // Fine-tuned net keeps the frozen prefix marker and only exposes
        // the classifier to optimizers.
        assert_eq!(tuned.frozen_prefix(), EXTRACTOR_DEPTH);
        assert_eq!(tuned.trainable_param_count(), 121 * 5);
    }
}

/// Pre-trains with the **SupCon** supervised-contrastive loss instead of
/// NT-Xent — the extension the replication's conclusions name as future
/// work. The protocol matches [`pretrain`] (same views, batching, early
/// stopping on loss) but the anchors' positives are all same-class
/// samples in the double batch, so the labels of the pre-training pool
/// are consumed.
pub fn pretrain_supcon(
    dataset: &Dataset,
    indices: &[usize],
    pair: ViewPair,
    fpcfg: &FlowpicConfig,
    norm: Normalization,
    config: &SimClrConfig,
) -> (Sequential, PretrainSummary) {
    pretrain_supcon_observed(dataset, indices, pair, fpcfg, norm, config, &mut Noop)
}

/// [`pretrain_supcon`] with a telemetry observer (trainer label
/// `"supcon"`). Observability-only: bit-identical to [`pretrain_supcon`].
pub fn pretrain_supcon_observed(
    dataset: &Dataset,
    indices: &[usize],
    pair: ViewPair,
    fpcfg: &FlowpicConfig,
    norm: Normalization,
    config: &SimClrConfig,
    obs: &mut dyn TrainObserver,
) -> (Sequential, PretrainSummary) {
    use nettensor::loss::SupCon;
    assert!(indices.len() >= 2, "SupCon needs at least 2 flows");
    let run_start = std::time::Instant::now();
    let mut net = simclr_net(
        fpcfg.resolution,
        config.proj_dim,
        config.dropout,
        config.seed,
    );
    let mut opt = Adam::new(config.learning_rate);
    let engine = BatchEngine::new(config.batch_workers);
    let mut grads = net.grad_store();
    let mut step = 0u64;
    let loss_fn = SupCon::new(config.temperature);
    let mut stopper =
        EarlyStopper::new(crate::early_stop::StopMode::Minimize, config.patience, 1e-4);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x50C0_4321);
    let res = fpcfg.resolution;

    obs.event(&TrainEvent::RunStart {
        trainer: "supcon",
        samples: indices.len(),
        max_epochs: config.max_epochs,
        start_epoch: 0,
    });

    let mut epochs = 0;
    let mut final_loss = 0f64;
    let mut best: Option<nettensor::model::Weights> = None;
    let mut best_epoch = None;
    for epoch in 0..config.max_epochs {
        epochs = epoch + 1;
        let mut order = indices.to_vec();
        order.shuffle(&mut rng);
        let epoch_start = std::time::Instant::now();
        let samples_before = engine.samples_processed();
        // Anchor-weighted epoch loss (see `pretrain`): the ragged last
        // batch counts by its size. The watched metric *is* this loss,
        // so the weighting directly shapes early stopping.
        let mut epoch_loss = 0f64;
        let mut n_anchors = 0usize;
        for (batch, chunk) in order.chunks(config.batch_size).enumerate() {
            if chunk.len() < 2 {
                continue;
            }
            let b = chunk.len();
            let mut data = Vec::with_capacity(2 * b * res * res);
            let mut view_b = Vec::with_capacity(b * res * res);
            let mut labels = Vec::with_capacity(2 * b);
            for &i in chunk {
                let (va, vb) = pair.views(&dataset.flows[i].pkts, fpcfg, &mut rng);
                data.extend(va.to_input(norm));
                view_b.extend(vb.to_input(norm));
                labels.push(dataset.flows[i].class as usize);
            }
            data.extend(view_b);
            let labels_twice: Vec<usize> = labels.iter().chain(labels.iter()).copied().collect();
            let x = Tensor::new(&[2 * b, 1, res, res], data);
            step += 1;
            let (z, tapes) = engine.forward(&net, &x, true, step);
            let out = loss_fn.eval(&z, &labels_twice);
            grads.zero();
            engine.backward(&net, &tapes, &out.grad, &mut grads);
            engine.commit(&mut net, &tapes);
            opt.step(&mut net, &grads);
            let anchors = 2 * b;
            epoch_loss += out.loss as f64 * anchors as f64;
            n_anchors += anchors;
            obs.event(&TrainEvent::BatchEnd {
                epoch: epochs,
                batch,
                loss: out.loss as f64,
                samples: anchors,
            });
        }
        final_loss = epoch_loss / n_anchors.max(1) as f64;
        let epoch_samples = (engine.samples_processed() - samples_before) as usize;
        let wall = epoch_start.elapsed().as_secs_f64();
        obs.event(&TrainEvent::EpochEnd {
            epoch: epochs,
            train_loss: final_loss,
            val_loss: None,
            samples: epoch_samples,
            wall_ms: wall * 1000.0,
            samples_per_sec: throughput_per_sec(epoch_samples, wall),
        });
        let verdict = stopper.observe(final_loss);
        if verdict.improved {
            best = Some(net.export_weights());
            best_epoch = Some(epochs);
        }
        if verdict.stop {
            break;
        }
    }
    // Return the best-loss epoch's weights, not the stopping epoch's.
    if let Some(best) = &best {
        net.import_weights(best);
    }
    obs.event(&TrainEvent::RunEnd {
        epochs,
        final_train_loss: final_loss,
        best_epoch,
        wall_ms: run_start.elapsed().as_secs_f64() * 1000.0,
    });
    // SupCon has no "positive rank" notion comparable to NT-Xent's top-5;
    // report 0 to keep the summary type shared.
    (
        net,
        PretrainSummary {
            epochs,
            final_loss,
            best_top5: 0.0,
        },
    )
}

#[cfg(test)]
mod supcon_tests {
    use super::*;
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    #[test]
    fn supcon_pretrain_supports_fine_tuning() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [16; 5];
        cfg.script_per_class = [8; 5];
        let ds = UcDavisSim::new(cfg).generate(31);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let config = SimClrConfig {
            max_epochs: 4,
            batch_size: 16,
            ..SimClrConfig::paper(3)
        };
        let (pre, summary) = pretrain_supcon(
            &ds,
            &idx,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
        );
        assert!(summary.final_loss.is_finite());
        let shots = few_shot_subset(&ds, &idx, 5, 1);
        let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, Normalization::LogMax);
        let tuned = fine_tune(&pre, &labeled, 2, 1);
        let test_idx = ds.partition_indices(Partition::Script);
        let test = FlowpicDataset::from_flows(&ds, &test_idx, &fpcfg, Normalization::LogMax);
        let trainer = crate::supervised::SupervisedTrainer::new(
            crate::supervised::TrainConfig::supervised(0),
        );
        let eval = trainer.evaluate(&tuned, &test);
        assert!(eval.accuracy > 0.3, "accuracy {}", eval.accuracy);
    }
}
