//! BYOL pre-training — the negative-free contrastive alternative.
//!
//! The paper's closest related work (Towhid & Shahriar, NetSoft'22, its
//! ref. \[37\]) applies **Bootstrap Your Own Latent** (Grill et al., 2020)
//! to the same dataset and reports performance comparable to the
//! Ref-Paper's SimCLR; the paper's Sec. 2.4 also singles BYOL out as the
//! prominent contrastive method that "does not use negative samples".
//! This module provides that comparator on our stack:
//!
//! * an **online** network (the SimCLR-shaped extractor + projector) plus
//!   a small MLP **predictor**;
//! * a **target** network of the same shape whose weights are an
//!   exponential moving average (EMA) of the online weights;
//! * the symmetric BYOL loss `2 − 2·cos(q(z_online), sg(z_target))`
//!   across the two augmented views, with gradients flowing only through
//!   the online branch.
//!
//! Both projector and predictor carry batch normalization — BYOL's
//! published recipe — because without it the online/target pair collapses
//! to a constant representation (this workspace's diagnostics reproduce
//! that classic failure). The resulting online network keeps the standard
//! extractor prefix, so it is drop-in compatible with
//! [`crate::simclr::fine_tune`].

use crate::arch::{byol_net, byol_predictor};
use crate::early_stop::EarlyStopper;
use crate::simclr::{PretrainSummary, SimClrConfig};
use crate::telemetry::{throughput_per_sec, Noop, TrainEvent, TrainObserver};
use augment::ViewPair;
use flowpic::{FlowpicConfig, Normalization};
use nettensor::optim::{Adam, Optimizer};
use nettensor::tape::Tape;
use nettensor::{Sequential, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use trafficgen::types::Dataset;

/// EMA decay of the target network (BYOL's τ). The original paper uses
/// 0.996 at batch 4096; small batches need a faster-moving target — a
/// slow one is the classic collapse recipe.
pub const TARGET_DECAY: f32 = 0.9;

/// Predictor learning-rate multiplier. Training the predictor faster
/// than the backbone is the standard stabilization for BN-free BYOL
/// (RichemondEtAl'20 report BYOL needs it without normalization).
pub const PREDICTOR_LR_MULT: f32 = 10.0;

/// BYOL loss between predictions `p` and (stop-gradient) targets `t`,
/// both `[B, D]`: mean over rows of `2 − 2·cos(p_i, t_i)`. Returns
/// `(loss, dL/dp)`.
fn byol_loss(p: &Tensor, t: &Tensor) -> (f32, Tensor) {
    assert_eq!(p.shape, t.shape);
    let (b, d) = (p.shape[0], p.shape[1]);
    let eps = 1e-12f32;
    let mut grad = Tensor::zeros(&p.shape);
    let mut loss = 0f32;
    for i in 0..b {
        let pr = &p.data[i * d..(i + 1) * d];
        let tr = &t.data[i * d..(i + 1) * d];
        let pn = pr.iter().map(|v| v * v).sum::<f32>().sqrt().max(eps);
        let tn = tr.iter().map(|v| v * v).sum::<f32>().sqrt().max(eps);
        let dot: f32 = pr.iter().zip(tr).map(|(a, b)| a * b).sum();
        let cos = dot / (pn * tn);
        loss += 2.0 - 2.0 * cos;
        // d(−2 cos)/dp = −2 (t̂ − cos·p̂)/‖p‖, averaged over the batch.
        for j in 0..d {
            let p_hat = pr[j] / pn;
            let t_hat = tr[j] / tn;
            grad.data[i * d + j] = -2.0 * (t_hat - cos * p_hat) / (pn * b as f32);
        }
    }
    (loss / b as f32, grad)
}

/// EMA-updates `target`'s weights toward `online`'s. Walks *all*
/// parameters (frozen included) — no export/freeze juggling needed now
/// that parameters are directly addressable.
fn ema_update(online: &Sequential, target: &mut Sequential, decay: f32) {
    for (t, o) in target.all_params_mut().into_iter().zip(online.all_params()) {
        for (tv, &ov) in t.data.iter_mut().zip(&o.data) {
            *tv = decay * *tv + (1.0 - decay) * ov;
        }
    }
}

/// Pre-trains with BYOL. Accepts the same configuration as SimCLR
/// ([`SimClrConfig`]; `temperature` is unused), returns the *online*
/// network, ready for [`crate::simclr::fine_tune`].
pub fn pretrain_byol(
    dataset: &Dataset,
    indices: &[usize],
    pair: ViewPair,
    fpcfg: &FlowpicConfig,
    norm: Normalization,
    config: &SimClrConfig,
) -> (Sequential, PretrainSummary) {
    pretrain_byol_observed(dataset, indices, pair, fpcfg, norm, config, &mut Noop)
}

/// [`pretrain_byol`] with a telemetry observer (trainer label `"byol"`).
/// `EpochEnd::samples` counts augmented views forwarded through the
/// online network (2× the flow count). Observability-only: bit-identical
/// to [`pretrain_byol`].
pub fn pretrain_byol_observed(
    dataset: &Dataset,
    indices: &[usize],
    pair: ViewPair,
    fpcfg: &FlowpicConfig,
    norm: Normalization,
    config: &SimClrConfig,
    obs: &mut dyn TrainObserver,
) -> (Sequential, PretrainSummary) {
    assert!(indices.len() >= 2, "BYOL needs at least 2 flows");
    let run_start = std::time::Instant::now();
    let res = fpcfg.resolution;
    let mut online = byol_net(res, config.proj_dim, config.dropout, config.seed);
    let mut target = byol_net(res, config.proj_dim, config.dropout, config.seed ^ 0xBEEF);
    // Target starts as a copy of the online network.
    let w = online.export_weights();
    target.import_weights(&w);
    let mut pred = byol_predictor(config.proj_dim, config.seed.wrapping_add(99));

    let mut opt = Adam::new(config.learning_rate);
    let mut pred_opt = Adam::new(config.learning_rate * PREDICTOR_LR_MULT);
    let mut grads = online.grad_store();
    let mut pred_grads = pred.grad_store();
    let mut step = 0u64;
    let mut stopper =
        EarlyStopper::new(crate::early_stop::StopMode::Minimize, config.patience, 1e-4);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB401_5678);

    obs.event(&TrainEvent::RunStart {
        trainer: "byol",
        samples: indices.len(),
        max_epochs: config.max_epochs,
        start_epoch: 0,
    });

    let mut epochs = 0;
    let mut final_loss = 0f64;
    let mut best_weights = online.export_weights();
    let mut best_epoch = None;
    for epoch in 0..config.max_epochs {
        epochs = epoch + 1;
        let mut order = indices.to_vec();
        order.shuffle(&mut rng);
        let epoch_start = std::time::Instant::now();
        // Sample-weighted epoch loss: `batch_loss / 2` is the mean BYOL
        // loss over the chunk's `b` flows, so weight by `b` — the ragged
        // last batch counts by its size, keeping the watched (stopping)
        // metric a true per-flow mean. BYOL bypasses the BatchEngine
        // (batch norm runs unsharded), so views are counted by hand.
        let mut epoch_loss = 0f64;
        let mut n_flows = 0usize;
        let mut epoch_views = 0usize;
        for (batch, chunk) in order.chunks(config.batch_size).enumerate() {
            if chunk.len() < 2 {
                continue;
            }
            let b = chunk.len();
            let mut va_data = Vec::with_capacity(b * res * res);
            let mut vb_data = Vec::with_capacity(b * res * res);
            for &i in chunk {
                let (va, vb) = pair.views(&dataset.flows[i].pkts, fpcfg, &mut rng);
                va_data.extend(va.to_input(norm));
                vb_data.extend(vb.to_input(norm));
            }
            let xa = Tensor::new(&[b, 1, res, res], va_data);
            let xb = Tensor::new(&[b, 1, res, res], vb_data);

            // Symmetric BYOL step: (online: A, target: B) then swapped.
            // Batch normalization couples the whole mini-batch, so BYOL
            // runs unsharded: one full-batch tape per branch.
            let mut batch_loss = 0f32;
            for (x_on, x_tg) in [(&xa, &xb), (&xb, &xa)] {
                step += 1;
                let mut on_tape = Tape::with_context(step, 0);
                let z_on = online.forward(x_on, true, &mut on_tape);
                let mut pred_tape = Tape::with_context(step ^ 0x9E37_79B9, 0);
                let p = pred.forward(&z_on, true, &mut pred_tape);
                let t = target.infer(x_tg); // stop-gradient branch
                let (loss, grad_p) = byol_loss(&p, &t);
                pred_grads.zero();
                let grad_z = pred.backward(&pred_tape, &grad_p, &mut pred_grads);
                grads.zero();
                online.backward(&on_tape, &grad_z, &mut grads);
                pred.commit(&pred_tape);
                online.commit(&on_tape);
                pred_opt.step(&mut pred, &pred_grads);
                opt.step(&mut online, &grads);
                batch_loss += loss;
            }
            ema_update(&online, &mut target, TARGET_DECAY);
            let batch_mean = (batch_loss / 2.0) as f64;
            epoch_loss += batch_mean * b as f64;
            n_flows += b;
            epoch_views += 2 * b;
            obs.event(&TrainEvent::BatchEnd {
                epoch: epochs,
                batch,
                loss: batch_mean,
                samples: b,
            });
        }
        final_loss = epoch_loss / n_flows.max(1) as f64;
        let wall = epoch_start.elapsed().as_secs_f64();
        obs.event(&TrainEvent::EpochEnd {
            epoch: epochs,
            train_loss: final_loss,
            val_loss: None,
            samples: epoch_views,
            wall_ms: wall * 1000.0,
            samples_per_sec: throughput_per_sec(epoch_views, wall),
        });
        let verdict = stopper.observe(final_loss);
        if verdict.improved {
            best_weights = online.export_weights();
            best_epoch = Some(epochs);
        }
        if verdict.stop {
            break;
        }
    }
    // Hand back the best epoch's online weights, not the last (stale)
    // ones: patience epochs after the optimum would otherwise leak into
    // the returned extractor.
    online.import_weights(&best_weights);
    obs.event(&TrainEvent::RunEnd {
        epochs,
        final_train_loss: final_loss,
        best_epoch,
        wall_ms: run_start.elapsed().as_secs_f64() * 1000.0,
    });
    // BYOL has no contrastive ranking metric; report 0 for top-5.
    (
        online,
        PretrainSummary {
            epochs,
            final_loss,
            best_top5: 0.0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FlowpicDataset;
    use crate::simclr::{few_shot_subset, fine_tune};
    use crate::supervised::{SupervisedTrainer, TrainConfig};
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    #[test]
    fn byol_loss_zero_for_aligned_and_positive_otherwise() {
        let p = Tensor::new(&[2, 2], vec![1.0, 0.0, 0.0, 2.0]);
        let t = Tensor::new(&[2, 2], vec![3.0, 0.0, 0.0, 1.0]);
        let (loss, _) = byol_loss(&p, &t);
        assert!(
            loss.abs() < 1e-6,
            "aligned rows must give zero loss, got {loss}"
        );
        let t_orth = Tensor::new(&[2, 2], vec![0.0, 1.0, 1.0, 0.0]);
        let (loss, grad) = byol_loss(&p, &t_orth);
        assert!((loss - 2.0).abs() < 1e-6);
        assert!(grad.data.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn byol_loss_gradient_matches_finite_differences() {
        let p = Tensor::new(
            &[3, 3],
            vec![0.5, -0.2, 0.8, -0.3, 0.9, 0.1, 0.7, 0.7, -0.4],
        );
        let t = Tensor::new(
            &[3, 3],
            vec![0.6, -0.1, 0.9, -0.2, 1.0, 0.2, 0.5, 0.8, -0.5],
        );
        let (_, grad) = byol_loss(&p, &t);
        let eps = 1e-3f32;
        for i in 0..p.len() {
            let mut plus = p.clone();
            plus.data[i] += eps;
            let mut minus = p.clone();
            minus.data[i] -= eps;
            let numeric = (byol_loss(&plus, &t).0 - byol_loss(&minus, &t).0) / (2.0 * eps);
            assert!(
                (grad.data[i] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "[{i}] {} vs {numeric}",
                grad.data[i]
            );
        }
    }

    #[test]
    fn ema_moves_target_toward_online() {
        let online = byol_net(32, 30, false, 1);
        let mut target = byol_net(32, 30, false, 2);
        let ow = online.export_weights();
        let before = target.export_weights();
        ema_update(&online, &mut target, 0.5);
        let after = target.export_weights();
        for ((b, a), o) in before.tensors.iter().zip(&after.tensors).zip(&ow.tensors) {
            for ((bv, av), ov) in b.iter().zip(a).zip(o) {
                assert!((av - (0.5 * bv + 0.5 * ov)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn byol_pretrain_supports_fine_tuning() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [16; 5];
        cfg.script_per_class = [8; 5];
        let ds = UcDavisSim::new(cfg).generate(61);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let config = SimClrConfig {
            max_epochs: 3,
            batch_size: 16,
            ..SimClrConfig::paper(5)
        };
        let (online, summary) = pretrain_byol(
            &ds,
            &idx,
            ViewPair::paper(),
            &fpcfg,
            Normalization::LogMax,
            &config,
        );
        assert!(summary.final_loss.is_finite());
        assert!(
            summary.final_loss < 2.0,
            "loss {} should fall below the random ~2",
            summary.final_loss
        );
        let shots = few_shot_subset(&ds, &idx, 5, 1);
        let labeled = FlowpicDataset::from_flows(&ds, &shots, &fpcfg, Normalization::LogMax);
        let tuned = fine_tune(&online, &labeled, 2, 1);
        let test_idx = ds.partition_indices(Partition::Script);
        let test = FlowpicDataset::from_flows(&ds, &test_idx, &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig::supervised(0));
        let eval = trainer.evaluate(&tuned, &test);
        assert!(eval.accuracy > 0.3, "accuracy {}", eval.accuracy);
    }
}
