//! Flows → training tensors.
//!
//! The paper's supervised protocol (Sec. 4.2.1): a training split of 100
//! flows per class, each augmentation applied **10 times** per flow →
//! 1 000 images per class ("no aug" keeps the original 100), 80/20
//! train/validation, early stopping on the validation loss.

use augment::Augmentation;
use flowpic::{DirectionalFlowpic, Flowpic, FlowpicConfig, Normalization};
use nettensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use trafficgen::types::Dataset;

/// Sequential mini-batch index chunks over `[0, len)`.
///
/// Evaluation passes iterate the dataset in order; collecting
/// `(0..len).collect::<Vec<usize>>()` just to call `.chunks()` on it
/// allocates an index per sample on every call. This iterator yields the
/// same chunks while only ever allocating one small buffer per batch.
pub fn index_chunks(len: usize, batch_size: usize) -> IndexChunks {
    IndexChunks {
        pos: 0,
        len,
        batch_size: batch_size.max(1),
    }
}

/// Iterator returned by [`index_chunks`]; yields `Vec<usize>` index
/// batches `[0..b), [b..2b), …` exactly like `chunks()` on a full index
/// vector would.
#[derive(Debug, Clone)]
pub struct IndexChunks {
    pos: usize,
    len: usize,
    batch_size: usize,
}

impl Iterator for IndexChunks {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos >= self.len {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.len);
        let chunk = (self.pos..end).collect();
        self.pos = end;
        Some(chunk)
    }
}

/// A rasterized, model-ready dataset: flattened flowpic inputs plus
/// labels.
#[derive(Debug, Clone)]
pub struct FlowpicDataset {
    /// Flowpic resolution (inputs are `channels · res²` long).
    pub res: usize,
    /// Input channels: 1 for the paper's direction-blind flowpic, 2 for
    /// the direction-aware extension (footnote 3 of the Ref-Paper).
    pub channels: usize,
    /// Flattened normalized flowpics.
    pub inputs: Vec<Vec<f32>>,
    /// Class labels, parallel to `inputs`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl FlowpicDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Rasterizes `indices` of `dataset` without augmentation.
    pub fn from_flows(
        dataset: &Dataset,
        indices: &[usize],
        config: &FlowpicConfig,
        norm: Normalization,
    ) -> FlowpicDataset {
        let mut inputs = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let flow = &dataset.flows[i];
            inputs.push(Flowpic::build(&flow.pkts, config).to_input(norm));
            labels.push(flow.class as usize);
        }
        FlowpicDataset {
            res: config.resolution,
            channels: 1,
            inputs,
            labels,
            n_classes: dataset.num_classes(),
        }
    }

    /// Rasterizes `indices` as 2-channel direction-aware flowpics — the
    /// reformulation the Ref-Paper's footnote 3 suggests (upstream and
    /// downstream packets in separate channels).
    pub fn from_flows_directional(
        dataset: &Dataset,
        indices: &[usize],
        config: &FlowpicConfig,
        norm: Normalization,
    ) -> FlowpicDataset {
        let mut inputs = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let flow = &dataset.flows[i];
            inputs.push(DirectionalFlowpic::build(&flow.pkts, config).to_input(norm));
            labels.push(flow.class as usize);
        }
        FlowpicDataset {
            res: config.resolution,
            channels: 2,
            inputs,
            labels,
            n_classes: dataset.num_classes(),
        }
    }

    /// Builds the paper's augmented training set: each flow contributes
    /// its original picture plus `copies` augmented ones — the paper's
    /// "apply each of the augmentations 10 times on the 100 samples per
    /// class training set, which increase the training set to 1000 images
    /// per class" (100 originals + 9 augmented copies in paper scale).
    /// Under [`Augmentation::NoAug`] only the originals are kept.
    pub fn augmented(
        dataset: &Dataset,
        indices: &[usize],
        aug: Augmentation,
        copies: usize,
        config: &FlowpicConfig,
        norm: Normalization,
        seed: u64,
    ) -> FlowpicDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let effective_copies = if aug == Augmentation::NoAug {
            0
        } else {
            copies
        };
        let mut inputs = Vec::with_capacity(indices.len() * (effective_copies + 1));
        let mut labels = Vec::with_capacity(indices.len() * (effective_copies + 1));
        for &i in indices {
            let flow = &dataset.flows[i];
            inputs.push(Flowpic::build(&flow.pkts, config).to_input(norm));
            labels.push(flow.class as usize);
            for _ in 0..effective_copies {
                inputs.push(aug.apply(&flow.pkts, config, &mut rng).to_input(norm));
                labels.push(flow.class as usize);
            }
        }
        FlowpicDataset {
            res: config.resolution,
            channels: 1,
            inputs,
            labels,
            n_classes: dataset.num_classes(),
        }
    }

    /// Splits off a validation fraction (shuffled, the paper's 80/20).
    pub fn split_validation(&self, val_frac: f64, seed: u64) -> (FlowpicDataset, FlowpicDataset) {
        assert!((0.0..1.0).contains(&val_frac));
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_val = ((self.len() as f64) * val_frac).round() as usize;
        let (val_idx, train_idx) = order.split_at(n_val.min(self.len()));
        let pick = |idx: &[usize]| FlowpicDataset {
            res: self.res,
            channels: self.channels,
            inputs: idx.iter().map(|&i| self.inputs[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        };
        (pick(train_idx), pick(val_idx))
    }

    /// Assembles a `[N, channels, res, res]` input tensor for the given
    /// sample indices.
    pub fn batch_tensor(&self, idx: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(idx.len() * self.channels * self.res * self.res);
        for &i in idx {
            data.extend_from_slice(&self.inputs[i]);
        }
        Tensor::new(&[idx.len(), self.channels, self.res, self.res], data)
    }

    /// Labels for the given sample indices.
    pub fn batch_labels(&self, idx: &[usize]) -> Vec<usize> {
        idx.iter().map(|&i| self.labels[i]).collect()
    }

    /// Sequential evaluation-order batches — see [`index_chunks`].
    pub fn index_chunks(&self, batch_size: usize) -> IndexChunks {
        index_chunks(self.len(), batch_size)
    }

    /// A shuffled epoch order.
    pub fn shuffled_order(&self, seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn tiny() -> Dataset {
        UcDavisSim::new(UcDavisConfig::tiny()).generate(3)
    }

    #[test]
    fn from_flows_shapes() {
        let ds = tiny();
        let idx = ds.partition_indices(Partition::Script);
        let fp =
            FlowpicDataset::from_flows(&ds, &idx, &FlowpicConfig::mini(), Normalization::LogMax);
        assert_eq!(fp.len(), idx.len());
        assert_eq!(fp.inputs[0].len(), 1024);
        assert_eq!(fp.n_classes, 5);
    }

    #[test]
    fn augmented_multiplies_samples() {
        let ds = tiny();
        let idx: Vec<usize> = ds
            .partition_indices(Partition::Script)
            .into_iter()
            .take(6)
            .collect();
        let aug = FlowpicDataset::augmented(
            &ds,
            &idx,
            Augmentation::ChangeRtt,
            10,
            &FlowpicConfig::mini(),
            Normalization::LogMax,
            7,
        );
        assert_eq!(aug.len(), 66); // 6 originals + 6x10 augmented
                                   // NoAug keeps the originals only.
        let plain = FlowpicDataset::augmented(
            &ds,
            &idx,
            Augmentation::NoAug,
            10,
            &FlowpicConfig::mini(),
            Normalization::LogMax,
            7,
        );
        assert_eq!(plain.len(), 6); // NoAug keeps only the originals
    }

    #[test]
    fn augmented_copies_differ() {
        let ds = tiny();
        let idx: Vec<usize> = ds
            .partition_indices(Partition::Script)
            .into_iter()
            .take(1)
            .collect();
        let aug = FlowpicDataset::augmented(
            &ds,
            &idx,
            Augmentation::TimeShift,
            5,
            &FlowpicConfig::mini(),
            Normalization::LogMax,
            9,
        );
        assert!(aug.inputs.iter().any(|v| v != &aug.inputs[0]));
        assert_eq!(aug.len(), 6); // 1 original + 5 augmented
                                  // Labels all equal the source flow's class.
        assert!(aug.labels.iter().all(|&l| l == aug.labels[0]));
    }

    #[test]
    fn validation_split_partitions_samples() {
        let ds = tiny();
        let idx = ds.partition_indices(Partition::Pretraining);
        let fp =
            FlowpicDataset::from_flows(&ds, &idx, &FlowpicConfig::mini(), Normalization::LogMax);
        let (train, val) = fp.split_validation(0.2, 1);
        assert_eq!(train.len() + val.len(), fp.len());
        assert_eq!(val.len(), (fp.len() as f64 * 0.2).round() as usize);
    }

    #[test]
    fn batch_tensor_layout() {
        let ds = tiny();
        let idx = ds.partition_indices(Partition::Script);
        let fp =
            FlowpicDataset::from_flows(&ds, &idx, &FlowpicConfig::mini(), Normalization::LogMax);
        let t = fp.batch_tensor(&[0, 1, 2]);
        assert_eq!(t.shape, vec![3, 1, 32, 32]);
        assert_eq!(&t.data[..1024], &fp.inputs[0][..]);
        assert_eq!(fp.batch_labels(&[0, 1]), &fp.labels[..2]);
    }

    #[test]
    fn index_chunks_match_collected_chunks() {
        // The iterator must yield exactly what `(0..len).collect()` +
        // `.chunks(b)` used to.
        for (len, b) in [(0usize, 4usize), (1, 4), (7, 3), (8, 4), (9, 4), (5, 64)] {
            let expected: Vec<Vec<usize>> = (0..len)
                .collect::<Vec<usize>>()
                .chunks(b)
                .map(|c| c.to_vec())
                .collect();
            let got: Vec<Vec<usize>> = index_chunks(len, b).collect();
            assert_eq!(got, expected, "len {len} batch {b}");
        }
        // Degenerate batch size is clamped, not a panic/infinite loop.
        assert_eq!(index_chunks(3, 0).count(), 3);
    }

    #[test]
    fn shuffled_order_is_permutation() {
        let ds = tiny();
        let idx = ds.partition_indices(Partition::Script);
        let fp =
            FlowpicDataset::from_flows(&ds, &idx, &FlowpicConfig::mini(), Normalization::LogMax);
        let mut order = fp.shuffled_order(5);
        assert_ne!(order, (0..fp.len()).collect::<Vec<_>>());
        order.sort_unstable();
        assert_eq!(order, (0..fp.len()).collect::<Vec<_>>());
    }
}
