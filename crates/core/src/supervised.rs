//! The supervised trainer.
//!
//! Reproduces the paper's training settings (Sec. 4.2.1): Adam with a
//! static learning rate of 0.001, batch size 32, early stopping on the
//! validation loss (patience 5, min-delta 0.001), accuracy as the
//! headline metric.
//!
//! Mini-batches execute through nettensor's [`BatchEngine`]: the model is
//! immutable during forward/backward, activation state lives on per-shard
//! tapes, and gradients reduce in fixed shard order — so
//! [`TrainConfig::batch_workers`] changes wall-clock time but never a
//! single bit of any loss, metric, or trained weight.
//!
//! Two guarantees the paper's model selection depends on:
//!
//! * **Best-weight restoration.** Early stopping selects the best epoch,
//!   so [`SupervisedTrainer::train`] snapshots the weights whenever the
//!   watched metric improves and restores that snapshot before returning
//!   — the evaluated model is the one `TrainSummary::best_val_loss`
//!   describes, not the stopping epoch's (patience epochs past the
//!   optimum).
//! * **Crash-safe resume.** [`SupervisedTrainer::train_resumable`]
//!   checkpoints at epoch boundaries ([`CheckpointSpec`]); a run killed
//!   at epoch *k* and resumed produces bit-identical final weights,
//!   losses and metrics to an uninterrupted run, because everything the
//!   loop depends on is reconstructed exactly: weights, Adam moments,
//!   the step counter (dropout salt), the epoch index (shuffle seed is
//!   `seed + epoch`), the early stopper and the best snapshot.

use crate::data::FlowpicDataset;
use crate::early_stop::EarlyStopper;
use crate::telemetry::{throughput_per_sec, Noop, TrainEvent, TrainObserver};
use mlstats::ConfusionMatrix;
use nettensor::checkpoint::{self, Checkpoint, CheckpointError, Decoder, Persist};
use nettensor::engine::BatchEngine;
use nettensor::loss::{accuracy, cross_entropy, predictions};
use nettensor::model::Weights;
use nettensor::optim::{Adam, Optimizer};
use nettensor::Sequential;
use serde::Serialize;
use std::path::PathBuf;

/// Trainer hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrainConfig {
    /// Learning rate (paper: 0.001 supervised, 0.01 fine-tuning).
    pub learning_rate: f32,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Upper bound on epochs (the paper relies on early stopping; this is
    /// a safety net).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Early-stopping minimum improvement.
    pub min_delta: f64,
    /// Shuffling/training seed.
    pub seed: u64,
    /// Threads sharding each mini-batch (0 = all available cores). Purely
    /// a throughput knob: results are bit-identical for any value.
    pub batch_workers: usize,
}

impl TrainConfig {
    /// The paper's supervised configuration.
    pub fn supervised(seed: u64) -> TrainConfig {
        TrainConfig {
            learning_rate: 0.001,
            batch_size: 32,
            max_epochs: 50,
            patience: 5,
            min_delta: 0.001,
            seed,
            batch_workers: 1,
        }
    }

    /// The engine configured by `batch_workers`.
    pub fn engine(&self) -> BatchEngine {
        BatchEngine::new(self.batch_workers)
    }

    /// Fingerprint of the configuration fields that determine the
    /// training trajectory. Checkpoints are stamped with it and resume
    /// refuses a mismatch. Two fields are deliberately excluded:
    /// `max_epochs` is a safety cap (raising it is precisely how a run is
    /// extended past an interruption point), and `batch_workers` is
    /// bit-neutral by the engine's determinism contract.
    pub fn fingerprint(&self) -> u64 {
        let mut body = String::new();
        self.learning_rate.encode(&mut body);
        self.batch_size.encode(&mut body);
        self.patience.encode(&mut body);
        self.min_delta.encode(&mut body);
        self.seed.encode(&mut body);
        checkpoint::fnv1a64(body.as_bytes())
    }
}

/// Where and how often [`SupervisedTrainer::train_resumable`] persists
/// its state.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file (overwritten atomically at each save).
    pub path: PathBuf,
    /// Save every `every` epochs. The final epoch — early stop or
    /// `max_epochs` — is always saved regardless.
    pub every: usize,
    /// Load `path` before training if it exists, continuing from the
    /// recorded epoch instead of starting over.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec that saves after every epoch and does not resume.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointSpec {
        CheckpointSpec {
            path: path.into(),
            every: 1,
            resume: false,
        }
    }

    /// Enables resuming from an existing checkpoint at the path.
    pub fn resuming(mut self) -> CheckpointSpec {
        self.resume = true;
        self
    }

    /// Sets the save cadence in epochs.
    pub fn every(mut self, epochs: usize) -> CheckpointSpec {
        assert!(epochs >= 1, "checkpoint cadence must be at least 1 epoch");
        self.every = epochs;
        self
    }
}

/// The watched-metric optimum: which epoch it was, the metric value, and
/// the weights to restore.
#[derive(Debug, Clone)]
struct BestWeights {
    /// 1-based epoch that set this best.
    epoch: usize,
    /// The watched metric at that epoch.
    watched: f64,
    /// The model weights at the end of that epoch.
    weights: Weights,
}

impl Persist for BestWeights {
    fn encode(&self, out: &mut String) {
        self.epoch.encode(out);
        self.watched.encode(out);
        self.weights.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(BestWeights {
            epoch: usize::decode(d)?,
            watched: f64::decode(d)?,
            weights: Weights::decode(d)?,
        })
    }
}

/// Trainer payload carried inside a supervised checkpoint: everything
/// beyond weights/optimizer/counters the loop needs to continue exactly.
struct TrainerState {
    stopper: EarlyStopper,
    best: Option<BestWeights>,
    final_train_loss: f64,
    stopped: bool,
}

impl Persist for TrainerState {
    fn encode(&self, out: &mut String) {
        self.stopper.encode(out);
        self.best.encode(out);
        self.final_train_loss.encode(out);
        self.stopped.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(TrainerState {
            stopper: EarlyStopper::decode(d)?,
            best: Option::decode(d)?,
            final_train_loss: f64::decode(d)?,
            stopped: bool::decode(d)?,
        })
    }
}

/// Outcome of an evaluation pass.
#[derive(Debug, Clone, Serialize)]
pub struct EvalResult {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Support-weighted F1 (the paper's Table 8 metric).
    pub weighted_f1: f64,
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainSummary {
    /// Epochs actually run (≤ `max_epochs`).
    pub epochs: usize,
    /// Final training loss.
    pub final_train_loss: f64,
    /// Best validation loss — `None` when no validation set was given or
    /// the stopper never observed an epoch (so no `f64::MAX` sentinel
    /// ever reaches serialized summaries). The returned model carries the
    /// weights of exactly this epoch.
    pub best_val_loss: Option<f64>,
    /// 1-based epoch whose weights the trainer returned (the watched
    /// metric's optimum); `None` when no epoch ran.
    pub best_epoch: Option<usize>,
}

/// Trains and evaluates supervised models.
pub struct SupervisedTrainer {
    config: TrainConfig,
    engine: BatchEngine,
}

impl SupervisedTrainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> SupervisedTrainer {
        let engine = config.engine();
        SupervisedTrainer { config, engine }
    }

    /// Trains `net` on `train`, early-stopping on `val`'s loss when
    /// provided (otherwise on the training loss, the fine-tuning rule).
    ///
    /// On return, `net` holds the weights of the **best** watched epoch
    /// (the one `TrainSummary::best_val_loss` reports), not the stopping
    /// epoch's. An empty validation set is treated as absent — its loss
    /// would be a constant 0.0 and corrupt early stopping.
    pub fn train(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
    ) -> TrainSummary {
        self.train_observed(net, train, val, &mut Noop)
    }

    /// [`SupervisedTrainer::train`] with a telemetry observer: emits
    /// `RunStart`, per-batch `BatchEnd`, per-epoch `EpochEnd` and a final
    /// `RunEnd`. Telemetry is observability-only — the run is
    /// bit-identical (weights and summary) to [`SupervisedTrainer::train`]
    /// with no observer, at any `batch_workers`.
    pub fn train_observed(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
        obs: &mut dyn TrainObserver,
    ) -> TrainSummary {
        self.train_impl(net, train, val, None, "supervised", obs)
            .expect("training without a checkpoint spec cannot fail on IO")
    }

    /// [`SupervisedTrainer::train`] with crash-safe persistence: saves a
    /// [`Checkpoint`] at the cadence given by `spec`, and — when
    /// `spec.resume` is set and the file exists — continues from it
    /// instead of starting over. The kill/resume round-trip is
    /// bit-identical: resumed training produces the same final weights
    /// and summary as an uninterrupted run.
    pub fn train_resumable(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
        spec: &CheckpointSpec,
    ) -> Result<TrainSummary, CheckpointError> {
        self.train_impl(net, train, val, Some(spec), "supervised", &mut Noop)
    }

    /// [`SupervisedTrainer::train_resumable`] with a telemetry observer.
    /// A resumed run emits events only for the epochs it actually
    /// recomputes (`RunStart::start_epoch` reports where it picked up);
    /// events never enter the checkpoint, so instrumented and plain runs
    /// write identical checkpoint files.
    pub fn train_resumable_observed(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
        spec: &CheckpointSpec,
        obs: &mut dyn TrainObserver,
    ) -> Result<TrainSummary, CheckpointError> {
        self.train_impl(net, train, val, Some(spec), "supervised", obs)
    }

    pub(crate) fn train_impl(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
        spec: Option<&CheckpointSpec>,
        trainer_label: &'static str,
        obs: &mut dyn TrainObserver,
    ) -> Result<TrainSummary, CheckpointError> {
        let run_start = std::time::Instant::now();
        assert!(!train.is_empty(), "empty training set");
        // An empty validation set would "evaluate" to loss 0.0 every
        // epoch and freeze early stopping at the first epoch. Treat it
        // as no validation set (watch the training loss instead).
        let val = val.filter(|v| !v.is_empty());
        let fingerprint = self.config.fingerprint();
        let mut opt = Adam::new(self.config.learning_rate);
        let mut state = TrainerState {
            stopper: EarlyStopper::new(
                crate::early_stop::StopMode::Minimize,
                self.config.patience,
                self.config.min_delta,
            ),
            best: None,
            final_train_loss: f64::MAX,
            stopped: false,
        };
        let mut grads = net.grad_store();
        let mut step = 0u64; // per-step dropout salt, worker-independent
        let mut start_epoch = 0usize;

        if let Some(spec) = spec {
            if spec.resume && spec.path.exists() {
                let ck: Checkpoint<TrainerState> = checkpoint::load(&spec.path)?;
                if ck.config_fingerprint != fingerprint {
                    return Err(CheckpointError::Body(format!(
                        "checkpoint at {} belongs to a different training \
                         configuration (fingerprint {:016x}, this config is {:016x})",
                        spec.path.display(),
                        ck.config_fingerprint,
                        fingerprint
                    )));
                }
                net.try_import_weights(&ck.weights)?;
                opt.import_state(ck.optimizer);
                state = ck.trainer;
                step = ck.step;
                start_epoch = ck.epoch;
            }
        }

        obs.event(&TrainEvent::RunStart {
            trainer: trainer_label,
            samples: train.len(),
            max_epochs: self.config.max_epochs,
            start_epoch,
        });

        let mut epochs = start_epoch;
        if !state.stopped {
            for epoch in start_epoch..self.config.max_epochs {
                epochs = epoch + 1;
                let order = train.shuffled_order(self.config.seed.wrapping_add(epoch as u64));
                let epoch_start = std::time::Instant::now();
                let samples_before = self.engine.samples_processed();
                // Sample-weighted epoch loss: cross_entropy returns the
                // batch mean, so weighting by the chunk size makes the
                // epoch figure the mean over *samples* — the ragged last
                // batch no longer counts as much as a full one (it used
                // to, when this divided by the batch count), keeping the
                // watched metric consistent with `loss()`.
                let mut epoch_loss = 0f64;
                let mut n_samples = 0usize;
                for (batch, chunk) in order.chunks(self.config.batch_size).enumerate() {
                    let x = train.batch_tensor(chunk);
                    let y = train.batch_labels(chunk);
                    step += 1;
                    let (logits, tapes) = self.engine.forward(net, &x, true, step);
                    let (loss, grad) = cross_entropy(&logits, &y);
                    grads.zero();
                    self.engine.backward(net, &tapes, &grad, &mut grads);
                    self.engine.commit(net, &tapes);
                    opt.step(net, &grads);
                    epoch_loss += loss as f64 * chunk.len() as f64;
                    n_samples += chunk.len();
                    obs.event(&TrainEvent::BatchEnd {
                        epoch: epochs,
                        batch,
                        loss: loss as f64,
                        samples: chunk.len(),
                    });
                }
                state.final_train_loss = epoch_loss / n_samples.max(1) as f64;
                // Throughput over the train pass only (snapshot before the
                // validation forward).
                let epoch_samples = (self.engine.samples_processed() - samples_before) as usize;
                let wall = epoch_start.elapsed().as_secs_f64();
                let watched = match val {
                    Some(v) => self.loss(net, v),
                    None => state.final_train_loss,
                };
                obs.event(&TrainEvent::EpochEnd {
                    epoch: epochs,
                    train_loss: state.final_train_loss,
                    val_loss: val.map(|_| watched),
                    samples: epoch_samples,
                    wall_ms: wall * 1000.0,
                    samples_per_sec: throughput_per_sec(epoch_samples, wall),
                });
                let verdict = state.stopper.observe(watched);
                if verdict.improved {
                    state.best = Some(BestWeights {
                        epoch: epochs,
                        watched,
                        weights: net.export_weights(),
                    });
                }
                state.stopped = verdict.stop;
                if let Some(spec) = spec {
                    let last = state.stopped || epochs == self.config.max_epochs;
                    if last || epochs % spec.every == 0 {
                        checkpoint::save(
                            &spec.path,
                            &Checkpoint {
                                weights: net.export_weights(),
                                optimizer: opt.export_state(),
                                epoch: epochs,
                                step,
                                config_fingerprint: fingerprint,
                                trainer: TrainerState {
                                    stopper: state.stopper.clone(),
                                    best: state.best.clone(),
                                    final_train_loss: state.final_train_loss,
                                    stopped: state.stopped,
                                },
                            },
                        )?;
                    }
                }
                if state.stopped {
                    break;
                }
            }
        }

        // The headline guarantee: hand back the best epoch's weights,
        // not the stopping epoch's (patience epochs past the optimum).
        if let Some(best) = &state.best {
            net.import_weights(&best.weights);
        }
        obs.event(&TrainEvent::RunEnd {
            epochs,
            final_train_loss: state.final_train_loss,
            best_epoch: state.best.as_ref().map(|b| b.epoch),
            wall_ms: run_start.elapsed().as_secs_f64() * 1000.0,
        });
        Ok(TrainSummary {
            epochs,
            final_train_loss: state.final_train_loss,
            best_val_loss: val.and_then(|_| state.stopper.best()),
            best_epoch: state.best.as_ref().map(|b| b.epoch),
        })
    }

    /// Mean cross-entropy loss of `net` on `data` (eval mode).
    pub fn loss(&self, net: &Sequential, data: &FlowpicDataset) -> f64 {
        let mut total = 0f64;
        let mut n = 0usize;
        for chunk in data.index_chunks(self.config.batch_size) {
            let x = data.batch_tensor(&chunk);
            let y = data.batch_labels(&chunk);
            let logits = self.engine.predict(net, &x);
            let (loss, _) = cross_entropy(&logits, &y);
            total += loss as f64 * chunk.len() as f64;
            n += chunk.len();
        }
        total / n.max(1) as f64
    }

    /// Evaluates `net` on `data`: accuracy, weighted F1 and the confusion
    /// matrix.
    pub fn evaluate(&self, net: &Sequential, data: &FlowpicDataset) -> EvalResult {
        let mut confusion = ConfusionMatrix::new(data.n_classes);
        let mut correct_weighted = 0f64;
        for chunk in data.index_chunks(self.config.batch_size) {
            let x = data.batch_tensor(&chunk);
            let y = data.batch_labels(&chunk);
            let logits = self.engine.predict(net, &x);
            let preds = predictions(&logits);
            confusion.record_all(&y, &preds);
            correct_weighted += accuracy(&logits, &y) * chunk.len() as f64;
        }
        EvalResult {
            accuracy: correct_weighted / data.len().max(1) as f64,
            weighted_f1: confusion.weighted_f1(),
            confusion,
        }
    }
}

/// Everything one supervised training invocation needs, as a typed
/// value: the network shape, the trainer hyper-parameters, and optional
/// crash-safe persistence. This is the library entry point `tcb train`
/// and each campaign cell parse their flags into — the CLI owns flag
/// syntax, this struct owns semantics.
#[derive(Debug, Clone)]
pub struct SupervisedJob {
    /// Trainer hyper-parameters (includes the shuffle seed).
    pub config: TrainConfig,
    /// Flowpic resolution the network is built for.
    pub resolution: usize,
    /// Classes the network separates.
    pub n_classes: usize,
    /// Whether the architecture includes dropout layers (the paper's
    /// supervised net does).
    pub dropout: bool,
    /// Weight-initialization seed. [`SupervisedJob::new`] sets it to the
    /// trainer seed, matching the CLI's historical behavior.
    pub net_seed: u64,
    /// When present, train crash-safely through
    /// [`SupervisedTrainer::train_resumable_observed`].
    pub checkpoint: Option<CheckpointSpec>,
}

impl SupervisedJob {
    /// A job with the paper's architecture choices: dropout on, network
    /// seeded with the trainer seed, no checkpointing.
    pub fn new(resolution: usize, n_classes: usize, config: TrainConfig) -> SupervisedJob {
        SupervisedJob {
            config,
            resolution,
            n_classes,
            dropout: true,
            net_seed: config.seed,
            checkpoint: None,
        }
    }

    /// Enables crash-safe checkpointing through `spec`.
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> SupervisedJob {
        self.checkpoint = Some(spec);
        self
    }
}

/// Runs one supervised job: builds the network, trains it (resumably
/// when the job carries a [`CheckpointSpec`]), and returns the trained
/// network holding the best-epoch weights plus the summary.
///
/// Exactly equivalent to assembling the pieces by hand — a job without a
/// checkpoint spec is bit-identical to `SupervisedTrainer::train` on a
/// freshly built net, and telemetry stays observability-only.
pub fn run_supervised_job(
    job: &SupervisedJob,
    train: &FlowpicDataset,
    val: Option<&FlowpicDataset>,
    obs: &mut dyn TrainObserver,
) -> Result<(Sequential, TrainSummary), CheckpointError> {
    let trainer = SupervisedTrainer::new(job.config);
    let mut net =
        crate::arch::supervised_net(job.resolution, job.n_classes, job.dropout, job.net_seed);
    let summary = match &job.checkpoint {
        Some(spec) => trainer.train_resumable_observed(&mut net, train, val, spec, obs)?,
        None => trainer.train_observed(&mut net, train, val, obs),
    };
    Ok((net, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::supervised_net;
    use flowpic::{FlowpicConfig, Normalization};
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn quick_config(seed: u64) -> TrainConfig {
        TrainConfig {
            max_epochs: 12,
            ..TrainConfig::supervised(seed)
        }
    }

    #[test]
    fn learns_separable_classes() {
        // Small UCDAVIS sim: the supervised net must beat chance by a wide
        // margin on held-out script data.
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [24; 5];
        cfg.script_per_class = [8; 5];
        let ds = UcDavisSim::new(cfg).generate(5);
        let fpcfg = FlowpicConfig::mini();
        let train_idx = ds.partition_indices(Partition::Pretraining);
        let test_idx = ds.partition_indices(Partition::Script);
        let train = FlowpicDataset::from_flows(&ds, &train_idx, &fpcfg, Normalization::LogMax);
        let test = FlowpicDataset::from_flows(&ds, &test_idx, &fpcfg, Normalization::LogMax);
        let (train, val) = train.split_validation(0.2, 0);

        let trainer = SupervisedTrainer::new(quick_config(1));
        let mut net = supervised_net(32, 5, false, 1);
        let summary = trainer.train(&mut net, &train, Some(&val));
        assert!(summary.epochs >= 1);
        let eval = trainer.evaluate(&net, &test);
        assert!(
            eval.accuracy > 0.5,
            "accuracy {} (chance = 0.2)",
            eval.accuracy
        );
        assert_eq!(eval.confusion.total() as usize, test.len());
    }

    #[test]
    fn supervised_job_matches_hand_assembled_training() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [10; 5];
        cfg.script_per_class = [2; 5];
        let ds = UcDavisSim::new(cfg).generate(9);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, Normalization::LogMax);
        let (train, val) = data.split_validation(0.2, 0);
        let config = TrainConfig {
            max_epochs: 3,
            ..TrainConfig::supervised(1)
        };

        let job = SupervisedJob::new(32, 5, config);
        let (job_net, job_summary) =
            run_supervised_job(&job, &train, Some(&val), &mut Noop).unwrap();

        let trainer = SupervisedTrainer::new(config);
        let mut net = supervised_net(32, 5, true, 1);
        let summary = trainer.train(&mut net, &train, Some(&val));

        assert_eq!(job_summary, summary);
        assert_eq!(
            job_net.export_weights().fingerprint(),
            net.export_weights().fingerprint(),
            "the typed job must be bit-identical to hand assembly"
        );
    }

    #[test]
    fn early_stopping_triggers() {
        // A one-sample training set converges instantly; the stopper must
        // end training well before max_epochs.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Script);
        let data = FlowpicDataset::from_flows(&ds, &idx[..4], &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 100,
            learning_rate: 0.01,
            ..TrainConfig::supervised(0)
        });
        let mut net = supervised_net(32, 5, false, 0);
        let summary = trainer.train(&mut net, &data, Some(&data));
        assert!(summary.epochs < 100, "ran {} epochs", summary.epochs);
    }

    #[test]
    fn deterministic_given_seed_at_any_worker_count() {
        // The tentpole acceptance gate: identical results — bit for bit —
        // at batch_workers 1, 2 and 8.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, Normalization::LogMax);
        let run = |workers: usize| {
            let trainer = SupervisedTrainer::new(TrainConfig {
                batch_workers: workers,
                ..quick_config(3)
            });
            let mut net = supervised_net(32, 5, false, 3);
            let summary = trainer.train(&mut net, &data, None);
            let acc = trainer.evaluate(&net, &data).accuracy;
            (
                summary.final_train_loss.to_bits(),
                acc.to_bits(),
                net.export_weights(),
            )
        };
        let baseline = run(1);
        assert_eq!(baseline, run(1), "same worker count must reproduce");
        assert_eq!(baseline, run(2), "2 workers must be bit-identical to 1");
        assert_eq!(baseline, run(8), "8 workers must be bit-identical to 1");
    }

    #[test]
    fn epoch_loss_is_sample_weighted_not_batch_weighted() {
        // 20 samples at batch 8 → batches of 8, 8 and a ragged 4. The
        // epoch loss must be the sample-weighted mean of the batch means
        // — bitwise — and must differ from the old batch-count average
        // (which over-weighted the ragged tail).
        use crate::telemetry::{Recorder, TrainEvent};
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(13);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let data = FlowpicDataset::from_flows(&ds, &idx[..20], &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 1,
            batch_size: 8,
            ..TrainConfig::supervised(21)
        });
        let mut net = supervised_net(32, 5, false, 21);
        let mut rec = Recorder::new();
        let summary = trainer.train_observed(&mut net, &data, None, &mut rec);

        let mut weighted = 0f64;
        let mut n = 0usize;
        let mut unweighted = 0f64;
        let mut batches = 0usize;
        for e in &rec.events {
            if let TrainEvent::BatchEnd { loss, samples, .. } = e {
                weighted += loss * *samples as f64;
                n += samples;
                unweighted += loss;
                batches += 1;
            }
        }
        assert_eq!((n, batches), (20, 3));
        assert_eq!(
            summary.final_train_loss.to_bits(),
            (weighted / n as f64).to_bits(),
            "epoch loss must be the sample-weighted mean"
        );
        assert_ne!(
            summary.final_train_loss.to_bits(),
            (unweighted / batches as f64).to_bits(),
            "ragged batch means the two averages must differ"
        );
    }

    #[test]
    fn best_val_loss_is_none_when_stopper_never_ran() {
        // max_epochs = 0: a validation set exists but no epoch ever
        // updated the stopper. The summary must say `None`, not leak the
        // f64::MAX sentinel into serialized output.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Script);
        let data = FlowpicDataset::from_flows(&ds, &idx[..4], &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 0,
            ..TrainConfig::supervised(0)
        });
        let mut net = supervised_net(32, 5, false, 0);
        let summary = trainer.train(&mut net, &data, Some(&data));
        assert_eq!(summary.best_val_loss, None);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(
            !json.contains("1.7976931348623157e308"),
            "sentinel leaked: {json}"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training_set() {
        let trainer = SupervisedTrainer::new(quick_config(0));
        let mut net = supervised_net(32, 5, false, 0);
        let empty = FlowpicDataset {
            res: 32,
            channels: 1,
            inputs: vec![],
            labels: vec![],
            n_classes: 5,
        };
        trainer.train(&mut net, &empty, None);
    }

    fn small_split() -> (FlowpicDataset, FlowpicDataset) {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(11);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, Normalization::LogMax);
        data.split_validation(0.25, 4)
    }

    #[test]
    fn returned_weights_are_the_best_epoch_not_the_stopping_epoch() {
        // The headline bugfix regression: after training, the model in
        // hand must achieve exactly `best_val_loss` on the validation
        // set — bitwise — rather than the (patience-epochs-worse)
        // stopping-epoch loss.
        let (train, val) = small_split();
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 20,
            ..TrainConfig::supervised(7)
        });
        let mut net = supervised_net(32, 5, false, 7);
        let summary = trainer.train(&mut net, &train, Some(&val));
        let best = summary.best_val_loss.expect("validation was provided");
        let actual = trainer.loss(&net, &val);
        assert_eq!(
            actual.to_bits(),
            best.to_bits(),
            "returned model's val loss {actual} != reported best {best}"
        );
        assert!(summary.best_epoch.is_some());
        assert!(summary.best_epoch.unwrap() <= summary.epochs);
    }

    #[test]
    fn empty_validation_set_is_treated_as_none() {
        // split_validation can hand back a 0-sample val split; its "loss"
        // would be a constant 0.0 and freeze early stopping after one
        // epoch. It must behave exactly like val = None.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(3);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Script);
        let data = FlowpicDataset::from_flows(&ds, &idx[..6], &fpcfg, Normalization::LogMax);
        let empty = FlowpicDataset {
            res: data.res,
            channels: data.channels,
            inputs: vec![],
            labels: vec![],
            n_classes: data.n_classes,
        };
        let trainer = SupervisedTrainer::new(quick_config(5));

        let mut net_a = supervised_net(32, 5, false, 5);
        let with_empty = trainer.train(&mut net_a, &data, Some(&empty));
        let mut net_b = supervised_net(32, 5, false, 5);
        let with_none = trainer.train(&mut net_b, &data, None);

        assert_eq!(with_empty.best_val_loss, None, "0.0 loss must not leak");
        assert_eq!(with_empty, with_none);
        assert_eq!(net_a.export_weights(), net_b.export_weights());
    }

    #[test]
    fn checkpoint_resume_continues_from_saved_epoch() {
        // Train 3 epochs with a checkpoint, then resume with a raised
        // cap: the loop must pick up at epoch 3, not restart.
        let (train, val) = small_split();
        let dir = std::env::temp_dir().join("tcbench_supervised_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_continues.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut net = supervised_net(32, 5, false, 9);
        let trainer3 = SupervisedTrainer::new(TrainConfig {
            max_epochs: 3,
            ..TrainConfig::supervised(9)
        });
        let spec = CheckpointSpec::new(&path);
        let first = trainer3
            .train_resumable(&mut net, &train, Some(&val), &spec)
            .unwrap();
        assert_eq!(first.epochs, 3);

        let trainer6 = SupervisedTrainer::new(TrainConfig {
            max_epochs: 6,
            ..TrainConfig::supervised(9)
        });
        let mut resumed_net = supervised_net(32, 5, false, 9);
        let resumed = trainer6
            .train_resumable(
                &mut resumed_net,
                &train,
                Some(&val),
                &spec.clone().resuming(),
            )
            .unwrap();
        assert!(resumed.epochs <= 6 && resumed.epochs > 3, "{resumed:?}");
    }

    #[test]
    fn resume_rejects_a_different_configuration() {
        let (train, val) = small_split();
        let dir = std::env::temp_dir().join("tcbench_supervised_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fingerprint_mismatch.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut net = supervised_net(32, 5, false, 2);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 2,
            ..TrainConfig::supervised(2)
        });
        trainer
            .train_resumable(&mut net, &train, Some(&val), &CheckpointSpec::new(&path))
            .unwrap();

        // Same checkpoint, different learning rate: refused.
        let other = SupervisedTrainer::new(TrainConfig {
            max_epochs: 4,
            learning_rate: 0.01,
            ..TrainConfig::supervised(2)
        });
        let mut net2 = supervised_net(32, 5, false, 2);
        let err = other
            .train_resumable(
                &mut net2,
                &train,
                Some(&val),
                &CheckpointSpec::new(&path).resuming(),
            )
            .unwrap_err();
        assert!(
            matches!(&err, nettensor::CheckpointError::Body(msg)
                if msg.contains("different training configuration")),
            "{err:?}"
        );
    }

    #[test]
    fn fingerprint_ignores_max_epochs_and_workers_only() {
        let base = TrainConfig::supervised(1);
        let fp = base.fingerprint();
        assert_eq!(
            fp,
            TrainConfig {
                max_epochs: 99,
                batch_workers: 8,
                ..base
            }
            .fingerprint(),
            "cap and worker count must not invalidate a checkpoint"
        );
        assert_ne!(fp, TrainConfig { seed: 2, ..base }.fingerprint());
        assert_ne!(
            fp,
            TrainConfig {
                learning_rate: 0.01,
                ..base
            }
            .fingerprint()
        );
    }
}
