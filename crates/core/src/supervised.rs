//! The supervised trainer.
//!
//! Reproduces the paper's training settings (Sec. 4.2.1): Adam with a
//! static learning rate of 0.001, batch size 32, early stopping on the
//! validation loss (patience 5, min-delta 0.001), accuracy as the
//! headline metric.
//!
//! Mini-batches execute through nettensor's [`BatchEngine`]: the model is
//! immutable during forward/backward, activation state lives on per-shard
//! tapes, and gradients reduce in fixed shard order — so
//! [`TrainConfig::batch_workers`] changes wall-clock time but never a
//! single bit of any loss, metric, or trained weight.

use crate::data::FlowpicDataset;
use crate::early_stop::EarlyStopper;
use mlstats::ConfusionMatrix;
use nettensor::engine::BatchEngine;
use nettensor::loss::{accuracy, cross_entropy, predictions};
use nettensor::optim::{Adam, Optimizer};
use nettensor::Sequential;
use serde::Serialize;

/// Trainer hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrainConfig {
    /// Learning rate (paper: 0.001 supervised, 0.01 fine-tuning).
    pub learning_rate: f32,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Upper bound on epochs (the paper relies on early stopping; this is
    /// a safety net).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Early-stopping minimum improvement.
    pub min_delta: f64,
    /// Shuffling/training seed.
    pub seed: u64,
    /// Threads sharding each mini-batch (0 = all available cores). Purely
    /// a throughput knob: results are bit-identical for any value.
    pub batch_workers: usize,
}

impl TrainConfig {
    /// The paper's supervised configuration.
    pub fn supervised(seed: u64) -> TrainConfig {
        TrainConfig {
            learning_rate: 0.001,
            batch_size: 32,
            max_epochs: 50,
            patience: 5,
            min_delta: 0.001,
            seed,
            batch_workers: 1,
        }
    }

    /// The engine configured by `batch_workers`.
    pub fn engine(&self) -> BatchEngine {
        BatchEngine::new(self.batch_workers)
    }
}

/// Outcome of an evaluation pass.
#[derive(Debug, Clone, Serialize)]
pub struct EvalResult {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Support-weighted F1 (the paper's Table 8 metric).
    pub weighted_f1: f64,
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize)]
pub struct TrainSummary {
    /// Epochs actually run (≤ `max_epochs`).
    pub epochs: usize,
    /// Final training loss.
    pub final_train_loss: f64,
    /// Best validation loss — `None` when no validation set was given or
    /// the stopper never observed an epoch (so no `f64::MAX` sentinel
    /// ever reaches serialized summaries).
    pub best_val_loss: Option<f64>,
}

/// Trains and evaluates supervised models.
pub struct SupervisedTrainer {
    config: TrainConfig,
    engine: BatchEngine,
}

impl SupervisedTrainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> SupervisedTrainer {
        let engine = config.engine();
        SupervisedTrainer { config, engine }
    }

    /// Trains `net` on `train`, early-stopping on `val`'s loss when
    /// provided (otherwise on the training loss, the fine-tuning rule).
    pub fn train(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
    ) -> TrainSummary {
        assert!(!train.is_empty(), "empty training set");
        let mut opt = Adam::new(self.config.learning_rate);
        let mut stopper = EarlyStopper::new(
            crate::early_stop::StopMode::Minimize,
            self.config.patience,
            self.config.min_delta,
        );
        let mut grads = net.grad_store();
        let mut step = 0u64; // per-step dropout salt, worker-independent
        let mut epochs = 0;
        let mut final_train_loss = f64::MAX;
        for epoch in 0..self.config.max_epochs {
            epochs = epoch + 1;
            let order = train.shuffled_order(self.config.seed.wrapping_add(epoch as u64));
            let mut epoch_loss = 0f64;
            let mut n_batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let x = train.batch_tensor(chunk);
                let y = train.batch_labels(chunk);
                step += 1;
                let (logits, tapes) = self.engine.forward(net, &x, true, step);
                let (loss, grad) = cross_entropy(&logits, &y);
                grads.zero();
                self.engine.backward(net, &tapes, &grad, &mut grads);
                self.engine.commit(net, &tapes);
                opt.step(net, &grads);
                epoch_loss += loss as f64;
                n_batches += 1;
            }
            final_train_loss = epoch_loss / n_batches.max(1) as f64;
            let watched = match val {
                Some(v) => self.loss(net, v),
                None => final_train_loss,
            };
            if stopper.update(watched) {
                break;
            }
        }
        TrainSummary {
            epochs,
            final_train_loss,
            best_val_loss: val.and_then(|_| stopper.best()),
        }
    }

    /// Mean cross-entropy loss of `net` on `data` (eval mode).
    pub fn loss(&self, net: &Sequential, data: &FlowpicDataset) -> f64 {
        let mut total = 0f64;
        let mut n = 0usize;
        for chunk in data.index_chunks(self.config.batch_size) {
            let x = data.batch_tensor(&chunk);
            let y = data.batch_labels(&chunk);
            let (logits, _) = self.engine.forward(net, &x, false, 0);
            let (loss, _) = cross_entropy(&logits, &y);
            total += loss as f64 * chunk.len() as f64;
            n += chunk.len();
        }
        total / n.max(1) as f64
    }

    /// Evaluates `net` on `data`: accuracy, weighted F1 and the confusion
    /// matrix.
    pub fn evaluate(&self, net: &Sequential, data: &FlowpicDataset) -> EvalResult {
        let mut confusion = ConfusionMatrix::new(data.n_classes);
        let mut correct_weighted = 0f64;
        for chunk in data.index_chunks(self.config.batch_size) {
            let x = data.batch_tensor(&chunk);
            let y = data.batch_labels(&chunk);
            let (logits, _) = self.engine.forward(net, &x, false, 0);
            let preds = predictions(&logits);
            confusion.record_all(&y, &preds);
            correct_weighted += accuracy(&logits, &y) * chunk.len() as f64;
        }
        EvalResult {
            accuracy: correct_weighted / data.len().max(1) as f64,
            weighted_f1: confusion.weighted_f1(),
            confusion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::supervised_net;
    use flowpic::{FlowpicConfig, Normalization};
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn quick_config(seed: u64) -> TrainConfig {
        TrainConfig {
            max_epochs: 12,
            ..TrainConfig::supervised(seed)
        }
    }

    #[test]
    fn learns_separable_classes() {
        // Small UCDAVIS sim: the supervised net must beat chance by a wide
        // margin on held-out script data.
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [24; 5];
        cfg.script_per_class = [8; 5];
        let ds = UcDavisSim::new(cfg).generate(5);
        let fpcfg = FlowpicConfig::mini();
        let train_idx = ds.partition_indices(Partition::Pretraining);
        let test_idx = ds.partition_indices(Partition::Script);
        let train = FlowpicDataset::from_flows(&ds, &train_idx, &fpcfg, Normalization::LogMax);
        let test = FlowpicDataset::from_flows(&ds, &test_idx, &fpcfg, Normalization::LogMax);
        let (train, val) = train.split_validation(0.2, 0);

        let trainer = SupervisedTrainer::new(quick_config(1));
        let mut net = supervised_net(32, 5, false, 1);
        let summary = trainer.train(&mut net, &train, Some(&val));
        assert!(summary.epochs >= 1);
        let eval = trainer.evaluate(&net, &test);
        assert!(
            eval.accuracy > 0.5,
            "accuracy {} (chance = 0.2)",
            eval.accuracy
        );
        assert_eq!(eval.confusion.total() as usize, test.len());
    }

    #[test]
    fn early_stopping_triggers() {
        // A one-sample training set converges instantly; the stopper must
        // end training well before max_epochs.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Script);
        let data = FlowpicDataset::from_flows(&ds, &idx[..4], &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 100,
            learning_rate: 0.01,
            ..TrainConfig::supervised(0)
        });
        let mut net = supervised_net(32, 5, false, 0);
        let summary = trainer.train(&mut net, &data, Some(&data));
        assert!(summary.epochs < 100, "ran {} epochs", summary.epochs);
    }

    #[test]
    fn deterministic_given_seed_at_any_worker_count() {
        // The tentpole acceptance gate: identical results — bit for bit —
        // at batch_workers 1, 2 and 8.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, Normalization::LogMax);
        let run = |workers: usize| {
            let trainer = SupervisedTrainer::new(TrainConfig {
                batch_workers: workers,
                ..quick_config(3)
            });
            let mut net = supervised_net(32, 5, false, 3);
            let summary = trainer.train(&mut net, &data, None);
            let acc = trainer.evaluate(&net, &data).accuracy;
            (
                summary.final_train_loss.to_bits(),
                acc.to_bits(),
                net.export_weights(),
            )
        };
        let baseline = run(1);
        assert_eq!(baseline, run(1), "same worker count must reproduce");
        assert_eq!(baseline, run(2), "2 workers must be bit-identical to 1");
        assert_eq!(baseline, run(8), "8 workers must be bit-identical to 1");
    }

    #[test]
    fn best_val_loss_is_none_when_stopper_never_ran() {
        // max_epochs = 0: a validation set exists but no epoch ever
        // updated the stopper. The summary must say `None`, not leak the
        // f64::MAX sentinel into serialized output.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Script);
        let data = FlowpicDataset::from_flows(&ds, &idx[..4], &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 0,
            ..TrainConfig::supervised(0)
        });
        let mut net = supervised_net(32, 5, false, 0);
        let summary = trainer.train(&mut net, &data, Some(&data));
        assert_eq!(summary.best_val_loss, None);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(
            !json.contains("1.7976931348623157e308"),
            "sentinel leaked: {json}"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training_set() {
        let trainer = SupervisedTrainer::new(quick_config(0));
        let mut net = supervised_net(32, 5, false, 0);
        let empty = FlowpicDataset {
            res: 32,
            channels: 1,
            inputs: vec![],
            labels: vec![],
            n_classes: 5,
        };
        trainer.train(&mut net, &empty, None);
    }
}
