//! The supervised trainer.
//!
//! Reproduces the paper's training settings (Sec. 4.2.1): Adam with a
//! static learning rate of 0.001, batch size 32, early stopping on the
//! validation loss (patience 5, min-delta 0.001), accuracy as the
//! headline metric.

use crate::data::FlowpicDataset;
use crate::early_stop::EarlyStopper;
use mlstats::ConfusionMatrix;
use nettensor::loss::{accuracy, cross_entropy, predictions};
use nettensor::optim::{Adam, Optimizer};
use nettensor::Sequential;
use serde::Serialize;

/// Trainer hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrainConfig {
    /// Learning rate (paper: 0.001 supervised, 0.01 fine-tuning).
    pub learning_rate: f32,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Upper bound on epochs (the paper relies on early stopping; this is
    /// a safety net).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Early-stopping minimum improvement.
    pub min_delta: f64,
    /// Shuffling/training seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's supervised configuration.
    pub fn supervised(seed: u64) -> TrainConfig {
        TrainConfig {
            learning_rate: 0.001,
            batch_size: 32,
            max_epochs: 50,
            patience: 5,
            min_delta: 0.001,
            seed,
        }
    }
}

/// Outcome of an evaluation pass.
#[derive(Debug, Clone, Serialize)]
pub struct EvalResult {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Support-weighted F1 (the paper's Table 8 metric).
    pub weighted_f1: f64,
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize)]
pub struct TrainSummary {
    /// Epochs actually run (≤ `max_epochs`).
    pub epochs: usize,
    /// Final training loss.
    pub final_train_loss: f64,
    /// Best validation loss (when a validation set was given).
    pub best_val_loss: Option<f64>,
}

/// Trains and evaluates supervised models.
pub struct SupervisedTrainer {
    config: TrainConfig,
}

impl SupervisedTrainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> SupervisedTrainer {
        SupervisedTrainer { config }
    }

    /// Trains `net` on `train`, early-stopping on `val`'s loss when
    /// provided (otherwise on the training loss, the fine-tuning rule).
    pub fn train(
        &self,
        net: &mut Sequential,
        train: &FlowpicDataset,
        val: Option<&FlowpicDataset>,
    ) -> TrainSummary {
        assert!(!train.is_empty(), "empty training set");
        let mut opt = Adam::new(self.config.learning_rate);
        let mut stopper = EarlyStopper::new(
            crate::early_stop::StopMode::Minimize,
            self.config.patience,
            self.config.min_delta,
        );
        let mut epochs = 0;
        let mut final_train_loss = f64::MAX;
        for epoch in 0..self.config.max_epochs {
            epochs = epoch + 1;
            let order = train.shuffled_order(self.config.seed.wrapping_add(epoch as u64));
            let mut epoch_loss = 0f64;
            let mut n_batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let x = train.batch_tensor(chunk);
                let y = train.batch_labels(chunk);
                let logits = net.forward(&x, true);
                let (loss, grad) = cross_entropy(&logits, &y);
                net.zero_grad();
                net.backward(&grad);
                opt.step(net);
                epoch_loss += loss as f64;
                n_batches += 1;
            }
            final_train_loss = epoch_loss / n_batches.max(1) as f64;
            let watched = match val {
                Some(v) => self.loss(net, v),
                None => final_train_loss,
            };
            if stopper.update(watched) {
                break;
            }
        }
        TrainSummary {
            epochs,
            final_train_loss,
            best_val_loss: val.map(|_| stopper.best().unwrap_or(f64::MAX)),
        }
    }

    /// Mean cross-entropy loss of `net` on `data` (eval mode).
    pub fn loss(&self, net: &mut Sequential, data: &FlowpicDataset) -> f64 {
        let mut total = 0f64;
        let mut n = 0usize;
        let order: Vec<usize> = (0..data.len()).collect();
        for chunk in order.chunks(self.config.batch_size.max(1)) {
            let x = data.batch_tensor(chunk);
            let y = data.batch_labels(chunk);
            let logits = net.forward(&x, false);
            let (loss, _) = cross_entropy(&logits, &y);
            total += loss as f64 * chunk.len() as f64;
            n += chunk.len();
        }
        total / n.max(1) as f64
    }

    /// Evaluates `net` on `data`: accuracy, weighted F1 and the confusion
    /// matrix.
    pub fn evaluate(&self, net: &mut Sequential, data: &FlowpicDataset) -> EvalResult {
        let mut confusion = ConfusionMatrix::new(data.n_classes);
        let mut correct_weighted = 0f64;
        let order: Vec<usize> = (0..data.len()).collect();
        for chunk in order.chunks(self.config.batch_size.max(1)) {
            let x = data.batch_tensor(chunk);
            let y = data.batch_labels(chunk);
            let logits = net.forward(&x, false);
            let preds = predictions(&logits);
            confusion.record_all(&y, &preds);
            correct_weighted += accuracy(&logits, &y) * chunk.len() as f64;
        }
        EvalResult {
            accuracy: correct_weighted / data.len().max(1) as f64,
            weighted_f1: confusion.weighted_f1(),
            confusion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::supervised_net;
    use flowpic::{FlowpicConfig, Normalization};
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn quick_config(seed: u64) -> TrainConfig {
        TrainConfig { max_epochs: 12, ..TrainConfig::supervised(seed) }
    }

    #[test]
    fn learns_separable_classes() {
        // Small UCDAVIS sim: the supervised net must beat chance by a wide
        // margin on held-out script data.
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [24; 5];
        cfg.script_per_class = [8; 5];
        let ds = UcDavisSim::new(cfg).generate(5);
        let fpcfg = FlowpicConfig::mini();
        let train_idx = ds.partition_indices(Partition::Pretraining);
        let test_idx = ds.partition_indices(Partition::Script);
        let train = FlowpicDataset::from_flows(&ds, &train_idx, &fpcfg, Normalization::LogMax);
        let test = FlowpicDataset::from_flows(&ds, &test_idx, &fpcfg, Normalization::LogMax);
        let (train, val) = train.split_validation(0.2, 0);

        let trainer = SupervisedTrainer::new(quick_config(1));
        let mut net = supervised_net(32, 5, false, 1);
        let summary = trainer.train(&mut net, &train, Some(&val));
        assert!(summary.epochs >= 1);
        let eval = trainer.evaluate(&mut net, &test);
        assert!(eval.accuracy > 0.5, "accuracy {} (chance = 0.2)", eval.accuracy);
        assert_eq!(eval.confusion.total() as usize, test.len());
    }

    #[test]
    fn early_stopping_triggers() {
        // A one-sample training set converges instantly; the stopper must
        // end training well before max_epochs.
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Script);
        let data = FlowpicDataset::from_flows(&ds, &idx[..4], &fpcfg, Normalization::LogMax);
        let trainer = SupervisedTrainer::new(TrainConfig {
            max_epochs: 100,
            learning_rate: 0.01,
            ..TrainConfig::supervised(0)
        });
        let mut net = supervised_net(32, 5, false, 0);
        let summary = trainer.train(&mut net, &data, Some(&data));
        assert!(summary.epochs < 100, "ran {} epochs", summary.epochs);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(2);
        let fpcfg = FlowpicConfig::mini();
        let idx = ds.partition_indices(Partition::Pretraining);
        let data = FlowpicDataset::from_flows(&ds, &idx, &fpcfg, Normalization::LogMax);
        let run = || {
            let trainer = SupervisedTrainer::new(quick_config(3));
            let mut net = supervised_net(32, 5, false, 3);
            trainer.train(&mut net, &data, None);
            trainer.evaluate(&mut net, &data).accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training_set() {
        let trainer = SupervisedTrainer::new(quick_config(0));
        let mut net = supervised_net(32, 5, false, 0);
        let empty =
            FlowpicDataset { res: 32, channels: 1, inputs: vec![], labels: vec![], n_classes: 5 };
        trainer.train(&mut net, &empty, None);
    }
}
