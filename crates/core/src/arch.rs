//! The paper's network architectures (App. C, Listings 1–5).
//!
//! Two families exist:
//!
//! * the **mini** architecture — LeNet-5 — for 32×32 and 64×64 flowpics;
//! * the **full** architecture for 1500×1500 flowpics, with strided
//!   convolutions in front and one fewer fully-connected layer (the layer
//!   miscount the replication flags in the Ref-Paper's description).
//!
//! Architecture variants never change the layer count: optional layers
//! (dropout, projection stages) are *masked* with `Identity`, exactly as
//! the replication's Listings do (`Identity-6  < masked`). This keeps
//! layer indices stable, which is what lets the fine-tune network
//! transplant the first [`EXTRACTOR_DEPTH`] layers of a SimCLR network
//! verbatim.

use nettensor::layers::{
    BatchNorm1d, Conv2d, Dropout, Flatten, Identity, Layer, Linear, MaxPool2d, ReLU,
};
use nettensor::Sequential;

/// Which of the paper's two CNN families a resolution uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchFamily {
    /// LeNet-5, for 32×32 / 64×64 ("mini-flowpic").
    Mini,
    /// Strided CNN for 1500×1500 ("full-flowpic").
    Full,
}

/// Family used for a given flowpic resolution, following the paper
/// (mini for ≤ 64, full for 1500).
pub fn family_for_resolution(res: usize) -> ArchFamily {
    if res <= 256 {
        ArchFamily::Mini
    } else {
        ArchFamily::Full
    }
}

/// Number of leading layers that form the feature extractor `f(·)` — the
/// part SimCLR pre-trains and fine-tuning freezes. For the mini family
/// this is everything through the first `Linear(→120) + ReLU` (paper:
/// "the 5 first layers of the CNN" in Ref-Paper terms, layers 1–10 of the
/// replication's listings).
pub const EXTRACTOR_DEPTH: usize = 10;

/// Latent dimension produced by the extractor (`h = f(flowpic)`).
pub const LATENT_DIM: usize = 120;

fn conv_stack(
    res: usize,
    in_channels: usize,
    dropout: bool,
    seed: u64,
) -> (Vec<Box<dyn Layer>>, usize) {
    match family_for_resolution(res) {
        ArchFamily::Mini => {
            // LeNet-5: conv(1→6,5) pool conv(6→16,5) pool.
            let after_conv1 = res - 4;
            let after_pool1 = after_conv1 / 2;
            let after_conv2 = after_pool1 - 4;
            let after_pool2 = after_conv2 / 2;
            let flat = 16 * after_pool2 * after_pool2;
            let layers: Vec<Box<dyn Layer>> = vec![
                Box::new(Conv2d::new(in_channels, 6, 5, seed)),
                Box::new(ReLU::new()),
                Box::new(MaxPool2d::new(2)),
                Box::new(Conv2d::new(6, 16, 5, seed.wrapping_add(2))),
                Box::new(ReLU::new()),
                if dropout {
                    Box::new(Dropout::new_2d(0.25, seed.wrapping_add(3)))
                } else {
                    Box::new(Identity::new())
                },
                Box::new(MaxPool2d::new(2)),
                Box::new(Flatten::new()),
            ];
            (layers, flat)
        }
        ArchFamily::Full => {
            // Full-flowpic: strided conv(1→10,k10,s5) pool conv(10→20,k10,s5) pool.
            let after_conv1 = (res - 10) / 5 + 1;
            let after_pool1 = after_conv1 / 2;
            let after_conv2 = (after_pool1 - 10) / 5 + 1;
            let after_pool2 = after_conv2 / 2;
            let flat = 20 * after_pool2 * after_pool2;
            let layers: Vec<Box<dyn Layer>> = vec![
                Box::new(Conv2d::with_stride(in_channels, 10, 10, 5, seed)),
                Box::new(ReLU::new()),
                Box::new(MaxPool2d::new(2)),
                Box::new(Conv2d::with_stride(10, 20, 10, 5, seed.wrapping_add(2))),
                Box::new(ReLU::new()),
                if dropout {
                    Box::new(Dropout::new_2d(0.25, seed.wrapping_add(3)))
                } else {
                    Box::new(Identity::new())
                },
                Box::new(MaxPool2d::new(2)),
                Box::new(Flatten::new()),
            ];
            (layers, flat)
        }
    }
}

/// Supervised classifier (paper Listings 1–2).
///
/// Mini: `…conv stack… → Linear(flat,120) → ReLU → Linear(120,84) → ReLU →
/// Dropout(0.5)|Identity → Linear(84, C)`.
/// Full drops the middle FC: `… → Linear(flat,120) → ReLU → Identity →
/// Identity → Dropout|Identity → Linear(120, C)` (one fewer FC, masked to
/// keep indices aligned).
pub fn supervised_net(res: usize, n_classes: usize, dropout: bool, seed: u64) -> Sequential {
    supervised_net_with_channels(res, 1, n_classes, dropout, seed)
}

/// Supervised classifier over a multi-channel input — used by the
/// direction-aware flowpic extension (2 channels: upstream/downstream).
pub fn supervised_net_with_channels(
    res: usize,
    in_channels: usize,
    n_classes: usize,
    dropout: bool,
    seed: u64,
) -> Sequential {
    let (mut layers, flat) = conv_stack(res, in_channels, dropout, seed);
    layers.push(Box::new(Linear::new(
        flat,
        LATENT_DIM,
        seed.wrapping_add(4),
    )));
    layers.push(Box::new(ReLU::new()));
    match family_for_resolution(res) {
        ArchFamily::Mini => {
            layers.push(Box::new(Linear::new(LATENT_DIM, 84, seed.wrapping_add(5))));
            layers.push(Box::new(ReLU::new()));
            layers.push(if dropout {
                Box::new(Dropout::new(0.5, seed.wrapping_add(6)))
            } else {
                Box::new(Identity::new())
            });
            layers.push(Box::new(Linear::new(84, n_classes, seed.wrapping_add(7))));
        }
        ArchFamily::Full => {
            layers.push(Box::new(Identity::new()));
            layers.push(Box::new(Identity::new()));
            layers.push(if dropout {
                Box::new(Dropout::new(0.5, seed.wrapping_add(6)))
            } else {
                Box::new(Identity::new())
            });
            layers.push(Box::new(Linear::new(
                LATENT_DIM,
                n_classes,
                seed.wrapping_add(7),
            )));
        }
    }
    Sequential::new(layers)
}

/// SimCLR pre-training network (paper Listings 3–4): the extractor
/// followed by the projection head `g(·)` — `Linear(120,120) → ReLU →
/// Identity → Linear(120, proj_dim)`. The paper's default `proj_dim` is
/// 30; the replication ablates 84.
pub fn simclr_net(res: usize, proj_dim: usize, dropout: bool, seed: u64) -> Sequential {
    let (mut layers, flat) = conv_stack(res, 1, dropout, seed);
    layers.push(Box::new(Linear::new(
        flat,
        LATENT_DIM,
        seed.wrapping_add(4),
    )));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Linear::new(
        LATENT_DIM,
        LATENT_DIM,
        seed.wrapping_add(5),
    )));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Identity::new()));
    layers.push(Box::new(Linear::new(
        LATENT_DIM,
        proj_dim,
        seed.wrapping_add(7),
    )));
    Sequential::new(layers)
}

/// BYOL online/target network: the same extractor as [`simclr_net`] but
/// with a batch-normalized projector — BYOL collapses without
/// normalization (see [`crate::byol`]), while SimCLR's negatives keep it
/// stable with the paper's plain projector. The first
/// [`EXTRACTOR_DEPTH`] layers stay identical to the other networks, so
/// fine-tuning transplants work unchanged.
pub fn byol_net(res: usize, proj_dim: usize, dropout: bool, seed: u64) -> Sequential {
    let (mut layers, flat) = conv_stack(res, 1, dropout, seed);
    layers.push(Box::new(Linear::new(
        flat,
        LATENT_DIM,
        seed.wrapping_add(4),
    )));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Linear::new(
        LATENT_DIM,
        LATENT_DIM,
        seed.wrapping_add(5),
    )));
    layers.push(Box::new(BatchNorm1d::new(LATENT_DIM)));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Linear::new(
        LATENT_DIM,
        proj_dim,
        seed.wrapping_add(7),
    )));
    Sequential::new(layers)
}

/// BYOL predictor `q(·)`: batch-normalized 2-layer MLP over the
/// projection, per the original recipe.
pub fn byol_predictor(proj_dim: usize, seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(proj_dim, proj_dim * 2, seed)),
        Box::new(BatchNorm1d::new(proj_dim * 2)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(proj_dim * 2, proj_dim, seed.wrapping_add(1))),
    ])
}

/// Fine-tune network (paper Listing 5): the extractor with the projection
/// head masked out and a fresh `Linear(120, C)` classifier. Combine with
/// [`Sequential::copy_prefix_weights_from`] (depth [`EXTRACTOR_DEPTH`])
/// and [`Sequential::freeze_prefix`] to reproduce the paper's frozen
/// fine-tuning.
pub fn finetune_net(res: usize, n_classes: usize, seed: u64) -> Sequential {
    let (mut layers, flat) = conv_stack(res, 1, false, seed);
    layers.push(Box::new(Linear::new(
        flat,
        LATENT_DIM,
        seed.wrapping_add(4),
    )));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Identity::new()));
    layers.push(Box::new(Identity::new()));
    layers.push(Box::new(Identity::new()));
    layers.push(Box::new(Linear::new(
        LATENT_DIM,
        n_classes,
        seed.wrapping_add(7),
    )));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettensor::Tensor;

    #[test]
    fn listing1_parameter_count() {
        // Paper Listing 1: total 61 281 params for 32×32, 5 classes.
        let net = supervised_net(32, 5, true, 0);
        assert_eq!(net.total_param_count(), 61_281);
        assert_eq!(net.len(), 14);
    }

    #[test]
    fn listing2_without_dropout_same_params() {
        // Listing 2: masking dropout with Identity keeps 61 281 params.
        let net = supervised_net(32, 5, false, 0);
        assert_eq!(net.total_param_count(), 61_281);
        let summary = net.summary(&[1, 1, 32, 32]);
        assert!(summary.contains("Identity-6"), "{summary}");
        assert!(summary.contains("Identity-13"), "{summary}");
    }

    #[test]
    fn listing3_simclr_small_projection() {
        // Listing 3: 68 842 params with proj_dim 30.
        let net = simclr_net(32, 30, false, 0);
        assert_eq!(net.total_param_count(), 68_842);
    }

    #[test]
    fn listing4_simclr_large_projection() {
        // Listing 4: 75 376 params with proj_dim 84.
        let net = simclr_net(32, 84, false, 0);
        assert_eq!(net.total_param_count(), 75_376);
    }

    #[test]
    fn listing5_finetune_count() {
        // Listing 5: 51 297 params (extractor + Linear(120,5) = 605).
        let net = finetune_net(32, 5, 0);
        assert_eq!(net.total_param_count(), 51_297);
        assert_eq!(net.len(), 14);
    }

    #[test]
    fn forward_shapes_all_nets_mini() {
        let x = Tensor::zeros(&[2, 1, 32, 32]);
        assert_eq!(supervised_net(32, 5, true, 1).infer(&x).shape, vec![2, 5]);
        assert_eq!(simclr_net(32, 30, false, 1).infer(&x).shape, vec![2, 30]);
        assert_eq!(finetune_net(32, 7, 1).infer(&x).shape, vec![2, 7]);
    }

    #[test]
    fn forward_shapes_64() {
        let x = Tensor::zeros(&[1, 1, 64, 64]);
        assert_eq!(
            supervised_net(64, 10, false, 1).infer(&x).shape,
            vec![1, 10]
        );
    }

    #[test]
    fn full_family_shapes() {
        assert_eq!(family_for_resolution(1500), ArchFamily::Full);
        assert_eq!(family_for_resolution(64), ArchFamily::Mini);
        // Use a reduced "full-family" resolution for test speed: res=300
        // exercises the same strided stack.
        let x = Tensor::zeros(&[1, 1, 300, 300]);
        let net = supervised_net(300, 5, true, 1);
        assert_eq!(net.infer(&x).shape, vec![1, 5]);
        assert_eq!(net.len(), 14);
    }

    #[test]
    fn extractor_transplant_preserves_features() {
        // SimCLR net and fine-tune net agree on the first EXTRACTOR_DEPTH
        // layers after transplant: their latent h must match.
        let pre = simclr_net(32, 30, false, 42);
        let mut fine = finetune_net(32, 5, 777);
        fine.copy_prefix_weights_from(&pre, EXTRACTOR_DEPTH);
        fine.freeze_prefix(EXTRACTOR_DEPTH);
        assert_eq!(fine.trainable_param_count(), 605);
        // The frozen prefix hides extractor params from optimizers.
        assert_eq!(fine.trainable_params().len(), 2);
    }

    #[test]
    fn summary_matches_listing_names() {
        let s = simclr_net(32, 30, false, 0).summary(&[1, 1, 32, 32]);
        for needle in [
            "Conv2d-1",
            "MaxPool2d-3",
            "Flatten-8",
            "Linear-9",
            "Linear-14",
        ] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }
}
