//! Early stopping.
//!
//! The paper uses three early-stopping rules:
//!
//! * supervised: stop when the **validation loss** fails to improve by
//!   more than 0.001 for 5 consecutive epochs;
//! * SimCLR pre-training: stop on the **contrastive top-5 accuracy** with
//!   patience 3;
//! * fine-tuning: stop on the **training loss** with patience 5 and
//!   min-delta 0.001.
//!
//! [`EarlyStopper`] covers all three via a minimize/maximize mode.
//!
//! The stopper's state is persistable ([`Persist`]): a checkpointed run
//! restores it verbatim, so patience counting continues across a
//! kill/resume exactly as it would have uninterrupted.

use nettensor::checkpoint::{Decoder, Persist};

/// Whether the watched metric should decrease or increase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMode {
    /// Stop when the metric stops *decreasing* (losses).
    Minimize,
    /// Stop when the metric stops *increasing* (accuracies).
    Maximize,
}

/// The outcome of observing one epoch's metric: whether it set a new
/// best (callers snapshot weights on `improved`) and whether patience is
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopVerdict {
    /// The value is **strictly** better than everything seen so far —
    /// this epoch's weights are the new best and callers should snapshot
    /// them. Note the asymmetry with `stop`: model selection uses strict
    /// comparison, while patience counts only *material* improvements
    /// (beyond the min-delta) — a sub-delta improvement is still the best
    /// model even though it doesn't buy more patience.
    pub improved: bool,
    /// Patience is exhausted; training should stop.
    pub stop: bool,
}

/// Patience-based early stopping with a minimum improvement delta.
#[derive(Debug, Clone, PartialEq)]
pub struct EarlyStopper {
    mode: StopMode,
    patience: usize,
    min_delta: f64,
    /// Patience anchor: moves only on material (> min-delta) improvement.
    best: Option<f64>,
    /// Strict optimum: the best value observed at all — what the
    /// restored weights achieve.
    optimum: Option<f64>,
    bad_epochs: usize,
}

impl EarlyStopper {
    /// Creates a stopper.
    pub fn new(mode: StopMode, patience: usize, min_delta: f64) -> EarlyStopper {
        assert!(patience >= 1);
        assert!(min_delta >= 0.0);
        EarlyStopper {
            mode,
            patience,
            min_delta,
            best: None,
            optimum: None,
            bad_epochs: 0,
        }
    }

    /// The paper's supervised rule: validation loss, patience 5, δ 0.001.
    pub fn supervised() -> EarlyStopper {
        EarlyStopper::new(StopMode::Minimize, 5, 0.001)
    }

    /// The paper's SimCLR rule: top-5 accuracy, patience 3.
    pub fn simclr() -> EarlyStopper {
        EarlyStopper::new(StopMode::Maximize, 3, 0.0)
    }

    /// The paper's fine-tuning rule: training loss, patience 5, δ 0.001.
    pub fn finetune() -> EarlyStopper {
        EarlyStopper::new(StopMode::Minimize, 5, 0.001)
    }

    /// Records one epoch's metric and reports both whether it improved
    /// (the cue to snapshot best weights — any *strict* improvement) and
    /// whether to stop (patience over *material* improvements only, the
    /// Keras convention: `EarlyStopping` applies the min-delta,
    /// `ModelCheckpoint(save_best_only)` does not).
    pub fn observe(&mut self, value: f64) -> StopVerdict {
        let improved = match (self.optimum, self.mode) {
            (None, _) => true,
            (Some(opt), StopMode::Minimize) => value < opt,
            (Some(opt), StopMode::Maximize) => value > opt,
        };
        if improved {
            self.optimum = Some(value);
        }
        let material = match (self.best, self.mode) {
            (None, _) => true,
            (Some(best), StopMode::Minimize) => value < best - self.min_delta,
            (Some(best), StopMode::Maximize) => value > best + self.min_delta,
        };
        if material {
            self.best = Some(value);
            self.bad_epochs = 0;
        } else {
            self.bad_epochs += 1;
        }
        StopVerdict {
            improved,
            stop: self.bad_epochs >= self.patience,
        }
    }

    /// Records one epoch's metric; returns `true` when training should
    /// stop. Shorthand for [`EarlyStopper::observe`]`.stop`.
    pub fn update(&mut self, value: f64) -> bool {
        self.observe(value).stop
    }

    /// Best metric value seen so far (the strict optimum — exactly what
    /// the snapshot taken at the last `improved` verdict achieves).
    pub fn best(&self) -> Option<f64> {
        self.optimum
    }
}

impl Persist for StopMode {
    fn encode(&self, out: &mut String) {
        out.push_str(match self {
            StopMode::Minimize => "min\n",
            StopMode::Maximize => "max\n",
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        match d.token()? {
            "min" => Ok(StopMode::Minimize),
            "max" => Ok(StopMode::Maximize),
            other => Err(format!("unknown stop mode {other:?}")),
        }
    }
}

impl Persist for EarlyStopper {
    fn encode(&self, out: &mut String) {
        self.mode.encode(out);
        self.patience.encode(out);
        self.min_delta.encode(out);
        self.best.encode(out);
        self.optimum.encode(out);
        self.bad_epochs.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(EarlyStopper {
            mode: StopMode::decode(d)?,
            patience: usize::decode(d)?,
            min_delta: f64::decode(d)?,
            best: Option::decode(d)?,
            optimum: Option::decode(d)?,
            bad_epochs: usize::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_after_patience_without_improvement() {
        let mut s = EarlyStopper::new(StopMode::Minimize, 3, 0.0);
        assert!(!s.update(1.0));
        assert!(!s.update(1.0)); // bad 1
        assert!(!s.update(1.0)); // bad 2
        assert!(s.update(1.0)); // bad 3 → stop
    }

    #[test]
    fn improvement_resets_patience() {
        let mut s = EarlyStopper::new(StopMode::Minimize, 2, 0.0);
        assert!(!s.update(1.0));
        assert!(!s.update(1.0)); // bad 1
        assert!(!s.update(0.5)); // improvement resets
        assert!(!s.update(0.6)); // bad 1
        assert!(s.update(0.6)); // bad 2 → stop
        assert_eq!(s.best(), Some(0.5));
    }

    #[test]
    fn min_delta_requires_material_improvement() {
        // The paper's rule: improvements smaller than 0.001 do not count.
        let mut s = EarlyStopper::supervised();
        assert!(!s.update(1.0));
        for _ in 0..4 {
            assert!(!s.update(0.9995)); // below the delta: bad epochs
        }
        assert!(s.update(0.9993));
    }

    #[test]
    fn maximize_mode() {
        let mut s = EarlyStopper::new(StopMode::Maximize, 2, 0.0);
        assert!(!s.update(0.5));
        assert!(!s.update(0.6));
        assert!(!s.update(0.6)); // bad 1
        assert!(s.update(0.59)); // bad 2 → stop
        assert_eq!(s.best(), Some(0.6));
    }

    #[test]
    fn observe_reports_improvement_for_best_snapshots() {
        let mut s = EarlyStopper::new(StopMode::Minimize, 2, 0.0);
        assert_eq!(
            s.observe(1.0),
            StopVerdict {
                improved: true,
                stop: false
            }
        );
        assert!(!s.observe(1.2).improved);
        // Equal-to-best is NOT an improvement: the first epoch that hit
        // the value keeps the snapshot.
        assert!(!s.observe(1.0).improved);
        assert!(s.observe(1.0).stop);
    }

    #[test]
    fn sub_delta_improvement_snapshots_but_does_not_buy_patience() {
        // A loss creeping down by less than the min-delta is still the
        // best model seen (snapshot it) but must not postpone stopping —
        // otherwise training crawls forever on noise-level improvements.
        let mut s = EarlyStopper::new(StopMode::Minimize, 2, 0.001);
        assert!(s.observe(1.0).improved);
        let v = s.observe(0.9995); // strictly better, below the delta
        assert!(v.improved, "strict improvement must cue a snapshot");
        assert!(!v.stop);
        let v = s.observe(0.9991);
        assert!(v.improved);
        assert!(v.stop, "two sub-delta epochs exhaust patience 2");
        // The reported best is the strict optimum the snapshot achieves.
        assert_eq!(s.best(), Some(0.9991));
    }

    #[test]
    fn persist_round_trip_preserves_patience_state() {
        let mut s = EarlyStopper::supervised();
        s.update(1.0);
        s.update(1.0); // bad 1
        let mut body = String::new();
        s.encode(&mut body);
        let mut restored =
            EarlyStopper::decode(&mut nettensor::checkpoint::Decoder::new(&body)).unwrap();
        assert_eq!(restored, s);
        // Patience continues from where it left off: 4 more bad epochs
        // (not 5) exhaust it.
        let stops: Vec<bool> = (0..4).map(|_| restored.update(1.0)).collect();
        assert_eq!(stops, vec![false, false, false, true]);
    }

    #[test]
    fn presets_match_paper_parameters() {
        let mut sup = EarlyStopper::supervised();
        // Patience 5: five non-improving epochs after the first.
        sup.update(1.0);
        let stops: Vec<bool> = (0..5).map(|_| sup.update(1.0)).collect();
        assert_eq!(stops, vec![false, false, false, false, true]);

        let mut sim = EarlyStopper::simclr();
        sim.update(0.9);
        let stops: Vec<bool> = (0..3).map(|_| sim.update(0.9)).collect();
        assert_eq!(stops, vec![false, false, true]);
    }
}
