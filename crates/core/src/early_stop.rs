//! Early stopping.
//!
//! The paper uses three early-stopping rules:
//!
//! * supervised: stop when the **validation loss** fails to improve by
//!   more than 0.001 for 5 consecutive epochs;
//! * SimCLR pre-training: stop on the **contrastive top-5 accuracy** with
//!   patience 3;
//! * fine-tuning: stop on the **training loss** with patience 5 and
//!   min-delta 0.001.
//!
//! [`EarlyStopper`] covers all three via a minimize/maximize mode.

/// Whether the watched metric should decrease or increase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMode {
    /// Stop when the metric stops *decreasing* (losses).
    Minimize,
    /// Stop when the metric stops *increasing* (accuracies).
    Maximize,
}

/// Patience-based early stopping with a minimum improvement delta.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    mode: StopMode,
    patience: usize,
    min_delta: f64,
    best: Option<f64>,
    bad_epochs: usize,
}

impl EarlyStopper {
    /// Creates a stopper.
    pub fn new(mode: StopMode, patience: usize, min_delta: f64) -> EarlyStopper {
        assert!(patience >= 1);
        assert!(min_delta >= 0.0);
        EarlyStopper {
            mode,
            patience,
            min_delta,
            best: None,
            bad_epochs: 0,
        }
    }

    /// The paper's supervised rule: validation loss, patience 5, δ 0.001.
    pub fn supervised() -> EarlyStopper {
        EarlyStopper::new(StopMode::Minimize, 5, 0.001)
    }

    /// The paper's SimCLR rule: top-5 accuracy, patience 3.
    pub fn simclr() -> EarlyStopper {
        EarlyStopper::new(StopMode::Maximize, 3, 0.0)
    }

    /// The paper's fine-tuning rule: training loss, patience 5, δ 0.001.
    pub fn finetune() -> EarlyStopper {
        EarlyStopper::new(StopMode::Minimize, 5, 0.001)
    }

    /// Records one epoch's metric; returns `true` when training should
    /// stop.
    pub fn update(&mut self, value: f64) -> bool {
        let improved = match (self.best, self.mode) {
            (None, _) => true,
            (Some(best), StopMode::Minimize) => value < best - self.min_delta,
            (Some(best), StopMode::Maximize) => value > best + self.min_delta,
        };
        if improved {
            self.best = Some(value);
            self.bad_epochs = 0;
        } else {
            self.bad_epochs += 1;
        }
        self.bad_epochs >= self.patience
    }

    /// Best metric value seen so far.
    pub fn best(&self) -> Option<f64> {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_after_patience_without_improvement() {
        let mut s = EarlyStopper::new(StopMode::Minimize, 3, 0.0);
        assert!(!s.update(1.0));
        assert!(!s.update(1.0)); // bad 1
        assert!(!s.update(1.0)); // bad 2
        assert!(s.update(1.0)); // bad 3 → stop
    }

    #[test]
    fn improvement_resets_patience() {
        let mut s = EarlyStopper::new(StopMode::Minimize, 2, 0.0);
        assert!(!s.update(1.0));
        assert!(!s.update(1.0)); // bad 1
        assert!(!s.update(0.5)); // improvement resets
        assert!(!s.update(0.6)); // bad 1
        assert!(s.update(0.6)); // bad 2 → stop
        assert_eq!(s.best(), Some(0.5));
    }

    #[test]
    fn min_delta_requires_material_improvement() {
        // The paper's rule: improvements smaller than 0.001 do not count.
        let mut s = EarlyStopper::supervised();
        assert!(!s.update(1.0));
        for _ in 0..4 {
            assert!(!s.update(0.9995)); // below the delta: bad epochs
        }
        assert!(s.update(0.9993));
    }

    #[test]
    fn maximize_mode() {
        let mut s = EarlyStopper::new(StopMode::Maximize, 2, 0.0);
        assert!(!s.update(0.5));
        assert!(!s.update(0.6));
        assert!(!s.update(0.6)); // bad 1
        assert!(s.update(0.59)); // bad 2 → stop
        assert_eq!(s.best(), Some(0.6));
    }

    #[test]
    fn presets_match_paper_parameters() {
        let mut sup = EarlyStopper::supervised();
        // Patience 5: five non-improving epochs after the first.
        sup.update(1.0);
        let stops: Vec<bool> = (0..5).map(|_| sup.update(1.0)).collect();
        assert_eq!(stops, vec![false, false, false, false, true]);

        let mut sim = EarlyStopper::simclr();
        sim.update(0.9);
        let stops: Vec<bool> = (0..3).map(|_| sim.update(0.9)).collect();
        assert_eq!(stops, vec![false, false, true]);
    }
}
