//! Reproduction of Rezaei & Liu's semi-supervised pipeline (paper
//! App. D.3, Table 9, Fig. 9–10).
//!
//! The study that introduced UCDAVIS19 pre-trains on a *regression*
//! pretext task: subflows are sampled from each flow (Fixed / Random /
//! Incremental sampling) and a model learns to predict 24 statistical
//! metrics of the parent flow from the subflow alone. A classifier of 3
//! linear layers is then fine-tuned on a few labeled flows. The
//! replication reruns this to validate the UCDAVIS19 data and quantify
//! the script→human drop under a second, independent method.
//!
//! Inputs here are packet time-series feature vectors (not flowpics),
//! matching the original method; the sampling method only affects the
//! pre-training subflows. Performance is the macro-average accuracy, as
//! in the replication's Table 9.

use crate::data::index_chunks;
use crate::early_stop::EarlyStopper;
use augment::subflow::SamplingMethod;
use flowpic::features::{early_time_series_normalized, flow_statistics, normalize_statistics};
use mlstats::ConfusionMatrix;
use nettensor::layers::{Identity, Linear, ReLU};
use nettensor::loss::{cross_entropy, mse, predictions};
use nettensor::optim::{Adam, Optimizer};
use nettensor::tape::Tape;
use nettensor::{Sequential, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use trafficgen::types::Dataset;

/// Width of the time-series feature vector: 3 features × `SUBFLOW_LEN`
/// packets.
pub const SUBFLOW_LEN: usize = 20;
/// Feature dimension (`3 × SUBFLOW_LEN`).
pub const FEATURE_DIM: usize = 3 * SUBFLOW_LEN;
/// The regression target dimension (24 statistical flow metrics).
pub const STAT_DIM: usize = 24;
/// Latent width of the extractor.
const HIDDEN: usize = 128;
/// Number of layers forming the extractor (frozen at fine-tune time).
pub const EXTRACTOR_LAYERS: usize = 4;

/// Configuration of the regression pre-training.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RegressionConfig {
    /// Subflows sampled per flow during pre-training (the original paper
    /// uses up to 100; reduced here per run, swept by the bench).
    pub samples_per_flow: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epoch cap.
    pub max_epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl RegressionConfig {
    /// Default configuration.
    pub fn default_with_seed(seed: u64) -> RegressionConfig {
        RegressionConfig {
            samples_per_flow: 10,
            learning_rate: 0.001,
            batch_size: 64,
            max_epochs: 20,
            seed,
        }
    }
}

/// A generic flat feature dataset (time-series features, not flowpics).
#[derive(Debug, Clone)]
pub struct FeatureDataset {
    /// Feature vectors.
    pub inputs: Vec<Vec<f32>>,
    /// Labels, parallel to `inputs`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl FeatureDataset {
    /// Time-series features of the flows at `indices`.
    pub fn from_flows(dataset: &Dataset, indices: &[usize]) -> FeatureDataset {
        FeatureDataset {
            inputs: indices
                .iter()
                .map(|&i| early_time_series_normalized(&dataset.flows[i], SUBFLOW_LEN))
                .collect(),
            labels: indices
                .iter()
                .map(|&i| dataset.flows[i].class as usize)
                .collect(),
            n_classes: dataset.num_classes(),
        }
    }

    fn tensor(&self, idx: &[usize]) -> Tensor {
        let dim = self.inputs[0].len();
        let mut data = Vec::with_capacity(idx.len() * dim);
        for &i in idx {
            data.extend_from_slice(&self.inputs[i]);
        }
        Tensor::new(&[idx.len(), dim], data)
    }
}

/// The pre-training network: extractor (2 linear blocks) + regression
/// head predicting the 24 statistics.
fn regression_net(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(FEATURE_DIM, 256, seed)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(256, HIDDEN, seed.wrapping_add(1))),
        Box::new(ReLU::new()),
        Box::new(Linear::new(HIDDEN, STAT_DIM, seed.wrapping_add(2))),
    ])
}

/// The fine-tune network: the same extractor with the regression head
/// masked, plus the 3-linear-layer classifier of Rezaei & Liu.
fn classifier_net(n_classes: usize, seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(FEATURE_DIM, 256, seed)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(256, HIDDEN, seed.wrapping_add(1))),
        Box::new(ReLU::new()),
        Box::new(Identity::new()), // masked regression head
        Box::new(Linear::new(HIDDEN, 64, seed.wrapping_add(3))),
        Box::new(ReLU::new()),
        Box::new(Linear::new(64, 32, seed.wrapping_add(4))),
        Box::new(ReLU::new()),
        Box::new(Linear::new(32, n_classes, seed.wrapping_add(5))),
    ])
}

/// Pre-trains the regression model on subflows of the flows at `indices`
/// sampled with `method`.
pub fn pretrain_regression(
    dataset: &Dataset,
    indices: &[usize],
    method: SamplingMethod,
    config: &RegressionConfig,
) -> Sequential {
    assert!(!indices.is_empty());
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EAF_0001);
    // Materialize the subflow training set: features of each subflow,
    // target = normalized statistics of the parent flow.
    let mut inputs: Vec<Vec<f32>> = Vec::new();
    let mut targets: Vec<Vec<f32>> = Vec::new();
    for &i in indices {
        let flow = &dataset.flows[i];
        let stats = normalize_statistics(&flow_statistics(flow), 1000.0);
        for sub in method.sample_many(&flow.pkts, SUBFLOW_LEN, config.samples_per_flow, &mut rng) {
            let pseudo = trafficgen::types::Flow {
                pkts: sub,
                ..flow.clone()
            };
            inputs.push(early_time_series_normalized(&pseudo, SUBFLOW_LEN));
            targets.push(stats.clone());
        }
    }

    let mut net = regression_net(config.seed);
    let mut opt = Adam::new(config.learning_rate);
    let mut grads = net.grad_store();
    let mut step = 0u64;
    let mut stopper = EarlyStopper::new(crate::early_stop::StopMode::Minimize, 3, 1e-4);
    let n = inputs.len();
    for epoch in 0..config.max_epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let dim = inputs[0].len();
            let mut xdata = Vec::with_capacity(chunk.len() * dim);
            let mut tdata = Vec::with_capacity(chunk.len() * STAT_DIM);
            for &i in chunk {
                xdata.extend_from_slice(&inputs[i]);
                tdata.extend_from_slice(&targets[i]);
            }
            let x = Tensor::new(&[chunk.len(), dim], xdata);
            let t = Tensor::new(&[chunk.len(), STAT_DIM], tdata);
            step += 1;
            let mut tape = Tape::with_context(step, 0);
            let pred = net.forward(&x, true, &mut tape);
            let (loss, grad) = mse(&pred, &t);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            net.commit(&tape);
            opt.step(&mut net, &grads);
            epoch_loss += loss as f64;
            batches += 1;
        }
        let _ = epoch;
        if stopper.update(epoch_loss / batches.max(1) as f64) {
            break;
        }
    }
    net
}

/// Fine-tunes the 3-layer classifier on `labeled`, freezing the
/// pre-trained extractor. Returns the classifier network.
pub fn fine_tune_classifier(
    pretrained: &Sequential,
    labeled: &FeatureDataset,
    seed: u64,
) -> Sequential {
    assert!(!labeled.inputs.is_empty());
    let mut net = classifier_net(labeled.n_classes, seed);
    net.copy_prefix_weights_from(pretrained, EXTRACTOR_LAYERS);
    net.freeze_prefix(EXTRACTOR_LAYERS);
    let mut opt = Adam::new(0.01);
    let mut grads = net.grad_store();
    let mut step = 0u64;
    let mut stopper = EarlyStopper::finetune();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1FE);
    let n = labeled.inputs.len();
    for _ in 0..60 {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(32) {
            let x = labeled.tensor(chunk);
            let y: Vec<usize> = chunk.iter().map(|&i| labeled.labels[i]).collect();
            step += 1;
            let mut tape = Tape::with_context(step, 0);
            let logits = net.forward(&x, true, &mut tape);
            let (loss, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            net.commit(&tape);
            opt.step(&mut net, &grads);
            epoch_loss += loss as f64;
            batches += 1;
        }
        if stopper.update(epoch_loss / batches.max(1) as f64) {
            break;
        }
    }
    net
}

/// Evaluates a classifier on `data`, returning `(macro accuracy,
/// confusion matrix)` — Table 9's metric is the macro average.
pub fn evaluate_macro(net: &Sequential, data: &FeatureDataset) -> (f64, ConfusionMatrix) {
    let mut confusion = ConfusionMatrix::new(data.n_classes);
    for chunk in index_chunks(data.inputs.len(), 64) {
        let x = data.tensor(&chunk);
        let y: Vec<usize> = chunk.iter().map(|&i| data.labels[i]).collect();
        let logits = net.infer(&x);
        confusion.record_all(&y, &predictions(&logits));
    }
    let recalls = confusion.per_class_recall();
    // Macro over classes that actually appear in the data.
    let present: Vec<f64> = (0..data.n_classes)
        .filter(|&c| {
            (0..data.n_classes)
                .map(|j| confusion.get(c, j))
                .sum::<u64>()
                > 0
        })
        .map(|c| recalls[c])
        .collect();
    let macro_acc = if present.is_empty() {
        0.0
    } else {
        present.iter().sum::<f64>() / present.len() as f64
    };
    (macro_acc, confusion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn quick_cfg(seed: u64) -> RegressionConfig {
        RegressionConfig {
            samples_per_flow: 6,
            max_epochs: 12,
            ..RegressionConfig::default_with_seed(seed)
        }
    }

    #[test]
    fn pretrain_then_finetune_beats_chance() {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [30; 5];
        cfg.script_per_class = [16; 5];
        let ds = UcDavisSim::new(cfg).generate(11);
        let pre_idx = ds.partition_indices(Partition::Pretraining);
        let pre = pretrain_regression(&ds, &pre_idx, SamplingMethod::Incremental, &quick_cfg(1));

        let script = ds.partition_indices(Partition::Script);
        // 8 labeled flows per class for fine-tuning, the rest for testing.
        let labeled_idx = crate::simclr::few_shot_subset(&ds, &script, 8, 5);
        let test_idx: Vec<usize> = script
            .iter()
            .copied()
            .filter(|i| !labeled_idx.contains(i))
            .collect();
        let labeled = FeatureDataset::from_flows(&ds, &labeled_idx);
        let clf = fine_tune_classifier(&pre, &labeled, 2);
        let test = FeatureDataset::from_flows(&ds, &test_idx);
        let (acc, confusion) = evaluate_macro(&clf, &test);
        assert!(acc > 0.4, "macro accuracy {acc} (chance = 0.2)");
        assert_eq!(confusion.total() as usize, test.inputs.len());
    }

    #[test]
    fn all_sampling_methods_run() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(3);
        let idx = ds.partition_indices(Partition::Pretraining);
        for m in augment::subflow::ALL_SAMPLING_METHODS {
            let net = pretrain_regression(&ds, &idx, m, &quick_cfg(5));
            assert_eq!(net.len(), 5);
        }
    }

    #[test]
    fn finetune_freezes_extractor() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(3);
        let idx = ds.partition_indices(Partition::Pretraining);
        let pre = pretrain_regression(&ds, &idx, SamplingMethod::Random, &quick_cfg(7));
        let labeled = FeatureDataset::from_flows(&ds, &idx[..10]);
        let clf = fine_tune_classifier(&pre, &labeled, 8);
        assert_eq!(clf.frozen_prefix(), EXTRACTOR_LAYERS);
        // Trainable: Linear(128,64)+Linear(64,32)+Linear(32,5) (+ biases).
        assert_eq!(
            clf.trainable_param_count(),
            128 * 64 + 64 + 64 * 32 + 32 + 32 * 5 + 5
        );
    }

    #[test]
    fn macro_accuracy_ignores_absent_classes() {
        let ds = UcDavisSim::new(UcDavisConfig::tiny()).generate(3);
        let idx = ds.partition_indices(Partition::Script);
        // Only class-0 flows in the eval set.
        let only0: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| ds.flows[i].class == 0)
            .collect();
        let data = FeatureDataset::from_flows(&ds, &only0);
        let net = classifier_net(5, 1);
        let (acc, _) = evaluate_macro(&net, &data);
        // Untrained net: accuracy is whatever it is, but must be a valid
        // probability computed over present classes only.
        assert!((0.0..=1.0).contains(&acc));
    }
}
