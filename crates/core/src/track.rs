//! In-process experiment tracking.
//!
//! The paper's campaigns — 13 campaigns, 2 760 experiments — were tracked
//! with AimStack plus custom extensions. This module is the equivalent
//! for this reproduction: a thread-safe tracker that records each run's
//! hyper-parameters, metric series and artifacts, aggregates across runs,
//! and exports everything as JSON for post-processing (the replication's
//! "models, logs and reports" artifact set).

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One metric observation.
#[derive(Debug, Clone, Serialize)]
pub struct MetricPoint {
    /// Metric name (e.g. `"val_loss"`, `"test_accuracy"`).
    pub name: String,
    /// Step/epoch index.
    pub step: u64,
    /// Value.
    pub value: f64,
}

/// One tracked run.
#[derive(Debug, Clone, Serialize)]
pub struct Run {
    /// Run id, unique within the tracker.
    pub id: u64,
    /// Campaign/experiment name.
    pub name: String,
    /// Hyper-parameters.
    pub params: BTreeMap<String, String>,
    /// Metric observations in logging order.
    pub metrics: Vec<MetricPoint>,
    /// Named text artifacts (summaries, rendered tables, network
    /// listings).
    pub artifacts: BTreeMap<String, String>,
    /// Whether the run finished.
    pub finished: bool,
}

/// A thread-safe experiment tracker. Cloning shares the underlying store,
/// so campaign workers can log concurrently.
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    inner: Arc<Mutex<Vec<Run>>>,
}

/// Handle to a run being recorded.
#[derive(Debug, Clone)]
pub struct RunHandle {
    tracker: Tracker,
    id: u64,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Tracker {
        Tracker::default()
    }

    /// Starts a run under `name`.
    pub fn start_run(&self, name: &str) -> RunHandle {
        let mut runs = self.inner.lock();
        let id = runs.len() as u64;
        runs.push(Run {
            id,
            name: name.to_string(),
            params: BTreeMap::new(),
            metrics: Vec::new(),
            artifacts: BTreeMap::new(),
            finished: false,
        });
        RunHandle {
            tracker: self.clone(),
            id,
        }
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshot of all runs.
    pub fn runs(&self) -> Vec<Run> {
        self.inner.lock().clone()
    }

    /// The values of `metric` across all runs matching `filter` on the
    /// run's params (every `(key, value)` in `filter` must match).
    pub fn metric_values(&self, metric: &str, filter: &[(&str, &str)]) -> Vec<f64> {
        self.inner
            .lock()
            .iter()
            .filter(|run| {
                filter
                    .iter()
                    .all(|(k, v)| run.params.get(*k).map(String::as_str) == Some(*v))
            })
            .flat_map(|run| {
                run.metrics
                    .iter()
                    .filter(|m| m.name == metric)
                    .map(|m| m.value)
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Exports every run as pretty JSON.
    pub fn export_json(&self) -> String {
        serde_json::to_string_pretty(&*self.inner.lock()).expect("runs serialize")
    }
}

impl RunHandle {
    /// Records a hyper-parameter.
    pub fn log_param(&self, key: &str, value: impl ToString) {
        let mut runs = self.tracker.inner.lock();
        runs[self.id as usize]
            .params
            .insert(key.to_string(), value.to_string());
    }

    /// Records a metric observation.
    pub fn log_metric(&self, name: &str, step: u64, value: f64) {
        let mut runs = self.tracker.inner.lock();
        runs[self.id as usize].metrics.push(MetricPoint {
            name: name.to_string(),
            step,
            value,
        });
    }

    /// Stores a named text artifact.
    pub fn log_artifact(&self, name: &str, contents: impl ToString) {
        let mut runs = self.tracker.inner.lock();
        runs[self.id as usize]
            .artifacts
            .insert(name.to_string(), contents.to_string());
    }

    /// Marks the run finished.
    pub fn finish(&self) {
        let mut runs = self.tracker.inner.lock();
        runs[self.id as usize].finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_runs_params_metrics_artifacts() {
        let tracker = Tracker::new();
        let run = tracker.start_run("table4");
        run.log_param("augmentation", "Change RTT");
        run.log_param("resolution", 32);
        run.log_metric("test_accuracy", 0, 0.97);
        run.log_metric("test_accuracy", 1, 0.98);
        run.log_artifact("summary", "Conv2d-1 ...");
        run.finish();

        let runs = tracker.runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].params["augmentation"], "Change RTT");
        assert_eq!(runs[0].metrics.len(), 2);
        assert!(runs[0].finished);
        assert!(runs[0].artifacts.contains_key("summary"));
    }

    #[test]
    fn metric_filtering() {
        let tracker = Tracker::new();
        for (aug, acc) in [("A", 0.9), ("B", 0.8), ("A", 0.92)] {
            let run = tracker.start_run("t");
            run.log_param("aug", aug);
            run.log_metric("acc", 0, acc);
            run.finish();
        }
        let a = tracker.metric_values("acc", &[("aug", "A")]);
        assert_eq!(a, vec![0.9, 0.92]);
        let all = tracker.metric_values("acc", &[]);
        assert_eq!(all.len(), 3);
        assert!(tracker.metric_values("missing", &[]).is_empty());
    }

    #[test]
    fn concurrent_logging() {
        let tracker = Tracker::new();
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let t = tracker.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let run = t.start_run(&format!("w{worker}"));
                        run.log_metric("x", i, i as f64);
                        run.finish();
                    }
                });
            }
        });
        assert_eq!(tracker.len(), 400);
        assert!(tracker.runs().iter().all(|r| r.finished));
    }

    #[test]
    fn export_json_is_valid() {
        let tracker = Tracker::new();
        let run = tracker.start_run("t");
        run.log_metric("m", 0, 1.5);
        let json = tracker.export_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["metrics"][0]["value"], 1.5);
    }
}
