//! Parallel campaign execution.
//!
//! A modeling campaign is a grid of independent experiments (splits ×
//! seeds × configurations). The paper distributed its 2 760 experiments
//! over a GPU cluster; here a crossbeam-channel worker pool fans them out
//! over CPU cores. Results come back in task order regardless of
//! completion order, so downstream aggregation is deterministic.

use crossbeam::channel;
use parking_lot::Mutex;

/// Runs `n_tasks` instances of `task` (called with the task index) on
/// `workers` threads and returns the results **in task order**.
///
/// `workers = 0` means "number of available CPUs". Panics in a task are
/// propagated after all workers drain.
pub fn run_parallel<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        workers
    }
    .min(n_tasks);

    // Single-worker fast path keeps panics and stack traces simple.
    if workers <= 1 {
        return (0..n_tasks).map(&task).collect();
    }

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..n_tasks {
        tx.send(i).expect("queue send");
    }
    drop(tx);

    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n_tasks).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            let task = &task;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let out = task(i);
                    results.lock()[i] = Some(out);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} produced no result")))
        .collect()
}

/// Splits the machine's cores between campaign-level parallelism and
/// nettensor's per-batch [`batch_workers`] so the two layers composed
/// don't oversubscribe the CPU: the returned
/// `(campaign_workers, batch_workers)` always satisfies
/// `campaign · batch ≤ cores` (with both at least 1).
///
/// `campaign_workers = 0` means "as many as there are cores". The
/// campaign axis gets priority — independent experiments scale perfectly
/// while intra-batch sharding has reduction overhead — so `batch_workers`
/// only rises above 1 when experiments are too few to fill the machine.
/// Determinism is unaffected either way: [`nettensor::BatchEngine`]
/// produces bit-identical results for any worker count.
///
/// [`batch_workers`]: crate::supervised::TrainConfig::batch_workers
pub fn worker_budget(campaign_workers: usize, n_tasks: usize) -> (usize, usize) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let campaign = if campaign_workers == 0 {
        cores
    } else {
        campaign_workers
    }
    .min(n_tasks.max(1))
    .max(1);
    let batch = (cores / campaign.min(cores)).max(1);
    (campaign, batch)
}

/// Cartesian product of experiment axes — the shape of the paper's grids
/// (e.g. 7 augmentations × 5 splits × 3 seeds). Returns index tuples
/// `(i, j, k)` in row-major order.
pub fn grid3(a: usize, b: usize, c: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity(a * b * c);
    for i in 0..a {
        for j in 0..b {
            for k in 0..c {
                out.push((i, j, k));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        let results = run_parallel(64, 8, |i| i * 2);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_parallel(100, 4, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn zero_tasks() {
        let results: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(results.is_empty());
    }

    #[test]
    fn single_worker_path() {
        let results = run_parallel(10, 1, |i| i + 1);
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn auto_worker_count() {
        let results = run_parallel(16, 0, |i| i);
        assert_eq!(results.len(), 16);
    }

    #[test]
    fn worker_budget_never_oversubscribes() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for campaign in [0usize, 1, 2, 4, 64] {
            for tasks in [1usize, 3, 100] {
                let (c, b) = worker_budget(campaign, tasks);
                assert!(c >= 1 && b >= 1);
                assert!(c <= tasks.max(1), "campaign {c} for {tasks} tasks");
                assert!(
                    c * b <= cores.max(c),
                    "{c}·{b} oversubscribes {cores} cores"
                );
            }
        }
    }

    #[test]
    fn worker_budget_gives_batches_the_slack() {
        // A single experiment can use every core for batch sharding.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(worker_budget(1, 1), (1, cores));
        // Enough tasks to fill the machine leaves batches sequential.
        let (c, b) = worker_budget(0, 1000);
        assert_eq!(c, cores);
        assert_eq!(b, 1);
    }

    #[test]
    fn grid3_shape_and_order() {
        let g = grid3(2, 2, 3);
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], (0, 0, 0));
        assert_eq!(g[1], (0, 0, 1));
        assert_eq!(g[11], (1, 1, 2));
    }
}
