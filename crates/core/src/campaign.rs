//! Parallel campaign execution.
//!
//! A modeling campaign is a grid of independent experiments (splits ×
//! seeds × configurations). The paper distributed its 2 760 experiments
//! over a GPU cluster; here a crossbeam-channel worker pool fans them out
//! over CPU cores. Results come back in task order regardless of
//! completion order, so downstream aggregation is deterministic.

use crate::telemetry::CampaignProgress;
use crossbeam::channel;
use nettensor::checkpoint::{self, CheckpointError, Persist};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};

/// Runs `n_tasks` instances of `task` (called with the task index) on
/// `workers` threads and returns the results **in task order**.
///
/// `workers = 0` means "number of available CPUs". Panics in a task are
/// propagated after all workers drain.
pub fn run_parallel<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        workers
    }
    .min(n_tasks);

    // Single-worker fast path keeps panics and stack traces simple.
    if workers <= 1 {
        return (0..n_tasks).map(&task).collect();
    }

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..n_tasks {
        tx.send(i).expect("queue send");
    }
    drop(tx);

    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n_tasks).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            let task = &task;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let out = task(i);
                    results.lock()[i] = Some(out);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} produced no result")))
        .collect()
}

/// [`run_parallel`] with campaign telemetry: `progress` records each
/// completed task (and emits a `TaskEnd` event with running counts and an
/// ETA) the moment it finishes, from whichever worker thread ran it.
/// Observability-only: results are identical to [`run_parallel`].
pub fn run_parallel_observed<T, F>(
    n_tasks: usize,
    workers: usize,
    task: F,
    progress: &CampaignProgress,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_parallel(n_tasks, workers, |i| {
        let out = task(i);
        progress.task_done(i, false);
        out
    })
}

/// What [`run_parallel_resumable`] found on disk and what it had to do.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResumeReport {
    /// Tasks whose persisted result was loaded instead of recomputed.
    pub reused: usize,
    /// Tasks that actually ran this invocation.
    pub computed: usize,
    /// Task indices whose persisted file existed but failed verification
    /// (corrupted, truncated, wrong version) and were recomputed.
    pub invalid: Vec<usize>,
}

/// Per-task result file inside the campaign directory.
fn task_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("run_{i:05}.ckpt"))
}

/// [`run_parallel`] with crash-safe persistence: each task's result is
/// written to `dir/run_<index>.ckpt` the moment it completes, and on a
/// later invocation any task whose file loads cleanly is **skipped** and
/// its persisted result returned instead. A campaign killed at task 1 800
/// of 2 760 therefore restarts from task 1 800, not from zero.
///
/// Corrupted or truncated files (e.g. from a kill mid-write elsewhere —
/// our own writes are atomic) are treated as missing and recomputed; their
/// indices are listed in [`ResumeReport::invalid`]. Results are returned
/// in task order, exactly as [`run_parallel`] would have produced them.
pub fn run_parallel_resumable<T, F>(
    n_tasks: usize,
    workers: usize,
    dir: &Path,
    task: F,
) -> Result<(Vec<T>, ResumeReport), CheckpointError>
where
    T: Persist + Send,
    F: Fn(usize) -> T + Sync,
{
    resumable_impl(n_tasks, workers, dir, task, None)
}

/// [`run_parallel_resumable`] with campaign telemetry: every reused task
/// is reported to `progress` up front (as `reused`), every recomputed
/// task as it completes. `progress.counts()` afterwards mirrors the
/// returned [`ResumeReport`]. Observability-only.
pub fn run_parallel_resumable_observed<T, F>(
    n_tasks: usize,
    workers: usize,
    dir: &Path,
    task: F,
    progress: &CampaignProgress,
) -> Result<(Vec<T>, ResumeReport), CheckpointError>
where
    T: Persist + Send,
    F: Fn(usize) -> T + Sync,
{
    resumable_impl(n_tasks, workers, dir, task, Some(progress))
}

fn resumable_impl<T, F>(
    n_tasks: usize,
    workers: usize,
    dir: &Path,
    task: F,
    progress: Option<&CampaignProgress>,
) -> Result<(Vec<T>, ResumeReport), CheckpointError>
where
    T: Persist + Send,
    F: Fn(usize) -> T + Sync,
{
    std::fs::create_dir_all(dir)?;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_tasks);
    let mut report = ResumeReport::default();
    let mut todo = Vec::new();
    for i in 0..n_tasks {
        match checkpoint::load_value::<T>(&task_path(dir, i)) {
            Ok(v) => {
                report.reused += 1;
                slots.push(Some(v));
                if let Some(p) = progress {
                    p.task_done(i, true);
                }
            }
            Err(e) => {
                if !matches!(e, CheckpointError::Io(_)) {
                    report.invalid.push(i);
                }
                todo.push(i);
                slots.push(None);
            }
        }
    }

    report.computed = todo.len();
    let fresh = run_parallel(todo.len(), workers, |j| {
        let i = todo[j];
        let out = task(i);
        // Persist immediately: a kill after this point loses nothing.
        let saved = checkpoint::save_value(&task_path(dir, i), &out);
        if let Some(p) = progress {
            p.task_done(i, false);
        }
        (out, saved)
    });
    for (j, (out, saved)) in fresh.into_iter().enumerate() {
        saved?;
        slots[todo[j]] = Some(out);
    }
    Ok((
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} produced no result")))
            .collect(),
        report,
    ))
}

/// Splits the machine's cores between campaign-level parallelism and
/// nettensor's per-batch [`batch_workers`] so the two layers composed
/// don't oversubscribe the CPU: the returned
/// `(campaign_workers, batch_workers)` always satisfies
/// `campaign · batch ≤ cores` (with both at least 1).
///
/// `campaign_workers = 0` means "as many as there are cores". The
/// campaign axis gets priority — independent experiments scale perfectly
/// while intra-batch sharding has reduction overhead — so `batch_workers`
/// only rises above 1 when experiments are too few to fill the machine.
/// Determinism is unaffected either way: [`nettensor::BatchEngine`]
/// produces bit-identical results for any worker count.
///
/// [`batch_workers`]: crate::supervised::TrainConfig::batch_workers
pub fn worker_budget(campaign_workers: usize, n_tasks: usize) -> (usize, usize) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let campaign = if campaign_workers == 0 {
        cores
    } else {
        campaign_workers
    }
    .min(n_tasks.max(1))
    .max(1);
    let batch = (cores / campaign.min(cores)).max(1);
    (campaign, batch)
}

/// Cartesian product of experiment axes — the shape of the paper's grids
/// (e.g. 7 augmentations × 5 splits × 3 seeds). Returns index tuples
/// `(i, j, k)` in row-major order.
pub fn grid3(a: usize, b: usize, c: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity(a * b * c);
    for i in 0..a {
        for j in 0..b {
            for k in 0..c {
                out.push((i, j, k));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        let results = run_parallel(64, 8, |i| i * 2);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_parallel(100, 4, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn zero_tasks() {
        let results: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(results.is_empty());
    }

    #[test]
    fn single_worker_path() {
        let results = run_parallel(10, 1, |i| i + 1);
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn auto_worker_count() {
        let results = run_parallel(16, 0, |i| i);
        assert_eq!(results.len(), 16);
    }

    #[test]
    fn worker_budget_never_oversubscribes() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for campaign in [0usize, 1, 2, 4, 64] {
            for tasks in [1usize, 3, 100] {
                let (c, b) = worker_budget(campaign, tasks);
                assert!(c >= 1 && b >= 1);
                assert!(c <= tasks.max(1), "campaign {c} for {tasks} tasks");
                assert!(
                    c * b <= cores.max(c),
                    "{c}·{b} oversubscribes {cores} cores"
                );
            }
        }
    }

    #[test]
    fn worker_budget_gives_batches_the_slack() {
        // A single experiment can use every core for batch sharding.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(worker_budget(1, 1), (1, cores));
        // Enough tasks to fill the machine leaves batches sequential.
        let (c, b) = worker_budget(0, 1000);
        assert_eq!(c, cores);
        assert_eq!(b, 1);
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tcbench_campaign_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn resumable_first_run_computes_everything() {
        let dir = tmp_dir("fresh");
        let (results, report) = run_parallel_resumable(8, 2, &dir, |i| (i * 3) as u64).unwrap();
        assert_eq!(results, (0..8).map(|i| i * 3).collect::<Vec<u64>>());
        assert_eq!(report.reused, 0);
        assert_eq!(report.computed, 8);
        assert!(report.invalid.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_second_run_skips_completed_tasks() {
        let dir = tmp_dir("skip");
        run_parallel_resumable(6, 1, &dir, |i| i as u64).unwrap();
        let counter = AtomicUsize::new(0);
        let (results, report) = run_parallel_resumable(6, 1, &dir, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i as u64
        })
        .unwrap();
        assert_eq!(results, (0..6).collect::<Vec<u64>>());
        assert_eq!(counter.load(Ordering::SeqCst), 0, "no task should rerun");
        assert_eq!(report.reused, 6);
        assert_eq!(report.computed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_recomputes_missing_and_corrupted_results() {
        let dir = tmp_dir("corrupt");
        run_parallel_resumable(5, 1, &dir, |i| i as u64 + 100).unwrap();
        // Simulate a partial campaign: task 1's file vanished, task 3's
        // was truncated mid-write by an unclean kill.
        std::fs::remove_file(task_path(&dir, 1)).unwrap();
        let p3 = task_path(&dir, 3);
        let bytes = std::fs::read(&p3).unwrap();
        std::fs::write(&p3, &bytes[..bytes.len() / 2]).unwrap();

        let reran = Mutex::new(Vec::new());
        let (results, report) = run_parallel_resumable(5, 1, &dir, |i| {
            reran.lock().push(i);
            i as u64 + 100
        })
        .unwrap();
        assert_eq!(results, (100..105).collect::<Vec<u64>>());
        assert_eq!(report.reused, 3);
        assert_eq!(report.computed, 2);
        assert_eq!(report.invalid, vec![3], "truncation must be flagged");
        let mut reran = reran.into_inner();
        reran.sort_unstable();
        assert_eq!(reran, vec![1, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_parallel_observed_matches_plain_and_counts_tasks() {
        use crate::telemetry::Noop;
        let progress = CampaignProgress::new(10, Box::new(Noop));
        let results = run_parallel_observed(10, 4, |i| i * i, &progress);
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(progress.counts(), (10, 0, 10));
    }

    #[test]
    fn observed_resumable_campaign_distinguishes_reused_from_computed() {
        use crate::telemetry::Noop;
        let dir = tmp_dir("observed");
        let progress = CampaignProgress::new(6, Box::new(Noop));
        let (results, report) =
            run_parallel_resumable_observed(6, 2, &dir, |i| i as u64, &progress).unwrap();
        assert_eq!(results.len(), 6);
        assert_eq!((report.reused, report.computed), (0, 6));
        assert_eq!(progress.counts(), (6, 0, 6));
        // Second invocation: everything reloads from disk and the
        // progress counts mirror the ResumeReport.
        let progress = CampaignProgress::new(6, Box::new(Noop));
        let (_, report) =
            run_parallel_resumable_observed(6, 2, &dir, |i| i as u64, &progress).unwrap();
        assert_eq!((report.reused, report.computed), (6, 0));
        assert_eq!(progress.counts(), (6, 6, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid3_shape_and_order() {
        let g = grid3(2, 2, 3);
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], (0, 0, 0));
        assert_eq!(g[1], (0, 0, 1));
        assert_eq!(g[11], (1, 1, 2));
    }
}
