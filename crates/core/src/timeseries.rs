//! Packet-time-series CNN — the paper's declared future work.
//!
//! Paper Sec. 2.3: "These are interesting findings worth reproducing — on
//! flowpic in the context of this work — and we believe they should be
//! extended to packet time-series too in a future work." This module is
//! that extension: a 1-D CNN over the `(size, direction, inter-arrival)`
//! series of the first `L` packets, trained under the same protocol and
//! the same *time-series* augmentations (Change RTT, Time shift, Packet
//! loss — the image augmentations have no time-series counterpart).

use crate::data::index_chunks;
use crate::early_stop::EarlyStopper;
use augment::{timeseries as ts_aug, Augmentation};
use flowpic::features::early_time_series_normalized;
use mlstats::ConfusionMatrix;
use nettensor::layers::{Conv1d, Flatten, Linear, MaxPool1d, ReLU};
use nettensor::loss::{cross_entropy, predictions};
use nettensor::optim::{Adam, Optimizer};
use nettensor::tape::Tape;
use nettensor::{Sequential, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use trafficgen::types::{Dataset, Flow};

/// Default sequence length (packets per flow); the paper's early-
/// classification framing uses the first tens of packets.
pub const DEFAULT_SEQ_LEN: usize = 30;

/// A model-ready time-series dataset: channel-major `[3, L]` features.
#[derive(Debug, Clone)]
pub struct TsDataset {
    /// Packets per sample.
    pub seq_len: usize,
    /// Flattened `[3 · L]` feature vectors (sizes | directions |
    /// inter-arrivals), unit-normalized.
    pub inputs: Vec<Vec<f32>>,
    /// Labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl TsDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Extracts features of the flows at `indices`.
    pub fn from_flows(dataset: &Dataset, indices: &[usize], seq_len: usize) -> TsDataset {
        TsDataset {
            seq_len,
            inputs: indices
                .iter()
                .map(|&i| early_time_series_normalized(&dataset.flows[i], seq_len))
                .collect(),
            labels: indices
                .iter()
                .map(|&i| dataset.flows[i].class as usize)
                .collect(),
            n_classes: dataset.num_classes(),
        }
    }

    /// The augmented training set: originals plus `copies` transformed
    /// series per flow. Only the time-series policies apply; passing an
    /// image augmentation panics (there is no packet series to rebuild
    /// from a transformed picture).
    pub fn augmented(
        dataset: &Dataset,
        indices: &[usize],
        aug: Augmentation,
        copies: usize,
        seq_len: usize,
        seed: u64,
    ) -> TsDataset {
        assert!(
            aug == Augmentation::NoAug || aug.is_time_series(),
            "{} has no time-series form",
            aug.name()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let effective = if aug == Augmentation::NoAug {
            0
        } else {
            copies
        };
        let mut inputs = Vec::with_capacity(indices.len() * (effective + 1));
        let mut labels = Vec::with_capacity(inputs.capacity());
        for &i in indices {
            let flow = &dataset.flows[i];
            inputs.push(early_time_series_normalized(flow, seq_len));
            labels.push(flow.class as usize);
            for _ in 0..effective {
                let pkts = match aug {
                    Augmentation::ChangeRtt => ts_aug::change_rtt(&flow.pkts, &mut rng),
                    Augmentation::TimeShift => ts_aug::time_shift(&flow.pkts, &mut rng),
                    Augmentation::PacketLoss => {
                        ts_aug::packet_loss(&flow.pkts, augment::policy::PACKET_LOSS_PROB, &mut rng)
                    }
                    Augmentation::IatJitter => augment::extended::iat_jitter(
                        &flow.pkts,
                        augment::policy::IAT_JITTER_SIGMA,
                        &mut rng,
                    ),
                    Augmentation::PacketDuplication => augment::extended::packet_duplication(
                        &flow.pkts,
                        augment::policy::DUPLICATION_PROB,
                        &mut rng,
                    ),
                    Augmentation::PadSizes => {
                        augment::extended::pad_sizes(&flow.pkts, augment::policy::PAD_MAX, &mut rng)
                    }
                    _ => unreachable!("validated above"),
                };
                let pseudo = Flow {
                    pkts,
                    ..flow.clone()
                };
                inputs.push(early_time_series_normalized(&pseudo, seq_len));
                labels.push(flow.class as usize);
            }
        }
        TsDataset {
            seq_len,
            inputs,
            labels,
            n_classes: dataset.num_classes(),
        }
    }

    fn tensor(&self, idx: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(idx.len() * 3 * self.seq_len);
        for &i in idx {
            data.extend_from_slice(&self.inputs[i]);
        }
        Tensor::new(&[idx.len(), 3, self.seq_len], data)
    }
}

/// The 1-D CNN: `Conv1d(3→32,3) → ReLU → Pool2 → Conv1d(32→64,3) → ReLU →
/// Pool2 → Flatten → Linear(→120) → ReLU → Linear(120, C)` — the
/// time-series sibling of the mini flowpic architecture (same latent
/// width).
pub fn timeseries_net(seq_len: usize, n_classes: usize, seed: u64) -> Sequential {
    assert!(
        seq_len >= 10,
        "sequence length {seq_len} too short for the architecture"
    );
    let after_conv1 = seq_len - 2;
    let after_pool1 = after_conv1 / 2;
    let after_conv2 = after_pool1 - 2;
    let after_pool2 = after_conv2 / 2;
    let flat = 64 * after_pool2;
    Sequential::new(vec![
        Box::new(Conv1d::new(3, 32, 3, seed)),
        Box::new(ReLU::new()),
        Box::new(MaxPool1d::new(2)),
        Box::new(Conv1d::new(32, 64, 3, seed.wrapping_add(1))),
        Box::new(ReLU::new()),
        Box::new(MaxPool1d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(flat, 120, seed.wrapping_add(2))),
        Box::new(ReLU::new()),
        Box::new(Linear::new(120, n_classes, seed.wrapping_add(3))),
    ])
}

/// Trains the time-series CNN under the paper's settings (Adam lr 0.001,
/// batch 32, early stopping patience 5 / δ 0.001 on the validation loss
/// when `val` is given). Returns epochs run.
pub fn train_timeseries(
    net: &mut Sequential,
    train: &TsDataset,
    val: Option<&TsDataset>,
    max_epochs: usize,
    seed: u64,
) -> usize {
    assert!(!train.is_empty());
    let mut opt = Adam::new(0.001);
    let mut grads = net.grad_store();
    let mut step = 0u64;
    let mut stopper = EarlyStopper::supervised();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut epochs = 0;
    for _ in 0..max_epochs {
        epochs += 1;
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut rng);
        let mut train_loss = 0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(32) {
            let x = train.tensor(chunk);
            let y: Vec<usize> = chunk.iter().map(|&i| train.labels[i]).collect();
            step += 1;
            let mut tape = Tape::with_context(step, 0);
            let logits = net.forward(&x, true, &mut tape);
            let (loss, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            net.commit(&tape);
            opt.step(net, &grads);
            train_loss += loss as f64;
            batches += 1;
        }
        let watched = match val {
            Some(v) => evaluate_loss(net, v),
            None => train_loss / batches.max(1) as f64,
        };
        if stopper.update(watched) {
            break;
        }
    }
    epochs
}

fn evaluate_loss(net: &Sequential, data: &TsDataset) -> f64 {
    let mut total = 0f64;
    for chunk in index_chunks(data.len(), 64) {
        let x = data.tensor(&chunk);
        let y: Vec<usize> = chunk.iter().map(|&i| data.labels[i]).collect();
        let (loss, _) = cross_entropy(&net.infer(&x), &y);
        total += loss as f64 * chunk.len() as f64;
    }
    total / data.len().max(1) as f64
}

/// Evaluates accuracy and the confusion matrix.
pub fn evaluate_timeseries(net: &Sequential, data: &TsDataset) -> (f64, ConfusionMatrix) {
    let mut confusion = ConfusionMatrix::new(data.n_classes);
    for chunk in index_chunks(data.len(), 64) {
        let x = data.tensor(&chunk);
        let y: Vec<usize> = chunk.iter().map(|&i| data.labels[i]).collect();
        confusion.record_all(&y, &predictions(&net.infer(&x)));
    }
    (confusion.accuracy(), confusion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::Partition;
    use trafficgen::ucdavis::{UcDavisConfig, UcDavisSim};

    fn dataset() -> Dataset {
        let mut cfg = UcDavisConfig::tiny();
        cfg.pretraining_per_class = [24; 5];
        cfg.script_per_class = [8; 5];
        cfg.max_pkts = 120;
        UcDavisSim::new(cfg).generate(88)
    }

    #[test]
    fn net_shapes_and_counts() {
        let net = timeseries_net(30, 5, 0);
        let x = Tensor::zeros(&[2, 3, 30]);
        assert_eq!(net.infer(&x).shape, vec![2, 5]);
        assert_eq!(net.len(), 10);
    }

    #[test]
    fn learns_from_time_series() {
        let ds = dataset();
        let train_idx = ds.partition_indices(Partition::Pretraining);
        let test_idx = ds.partition_indices(Partition::Script);
        let train = TsDataset::augmented(&ds, &train_idx, Augmentation::ChangeRtt, 2, 30, 3);
        let test = TsDataset::from_flows(&ds, &test_idx, 30);
        let mut net = timeseries_net(30, 5, 3);
        let epochs = train_timeseries(&mut net, &train, None, 12, 3);
        assert!(epochs >= 1);
        let (acc, confusion) = evaluate_timeseries(&net, &test);
        assert!(acc > 0.5, "accuracy {acc} (chance = 0.2)");
        assert_eq!(confusion.total() as usize, test.len());
    }

    #[test]
    fn augmented_grows_and_keeps_labels() {
        let ds = dataset();
        let idx: Vec<usize> = ds
            .partition_indices(Partition::Script)
            .into_iter()
            .take(5)
            .collect();
        let aug = TsDataset::augmented(&ds, &idx, Augmentation::TimeShift, 4, 20, 1);
        assert_eq!(aug.len(), 25);
        let plain = TsDataset::augmented(&ds, &idx, Augmentation::NoAug, 4, 20, 1);
        assert_eq!(plain.len(), 5);
    }

    #[test]
    #[should_panic(expected = "no time-series form")]
    fn image_augmentations_are_rejected() {
        let ds = dataset();
        let idx = ds.partition_indices(Partition::Script);
        TsDataset::augmented(&ds, &idx, Augmentation::Rotate, 2, 20, 1);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_too_short_sequences() {
        timeseries_net(4, 5, 0);
    }
}
