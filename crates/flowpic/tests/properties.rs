//! Property-based tests of the flowpic representation's invariants.

use proptest::prelude::*;

prop_compose! {
    fn arb_pkts()(
        gaps in prop::collection::vec(0.0f64..2.0, 0..120),
        sizes in prop::collection::vec(1u16..=1500, 120),
        ups in prop::collection::vec(any::<bool>(), 120),
    ) -> Vec<Pkt> {
        let mut ts = 0.0;
        gaps.iter()
            .enumerate()
            .map(|(i, &g)| {
                let t = ts;
                ts += g;
                Pkt::data(
                    t,
                    sizes[i],
                    if ups[i] { Direction::Upstream } else { Direction::Downstream },
                )
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn total_equals_in_window_count(pkts in arb_pkts(), res in 2usize..128) {
        let cfg = FlowpicConfig::with_resolution(res);
        let pic = Flowpic::build(&pkts, &cfg);
        let expected = pkts.iter().filter(|p| p.ts < cfg.window_s).count();
        prop_assert_eq!(pic.total() as usize, expected);
        prop_assert!(pic.data.iter().all(|&v| v >= 0.0));
        prop_assert_eq!(pic.data.len(), res * res);
    }

    #[test]
    fn resolution_refinement_preserves_mass(pkts in arb_pkts()) {
        // Mass is identical across resolutions (only binning changes).
        let t32 = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(32)).total();
        let t64 = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(64)).total();
        let t128 = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(128)).total();
        prop_assert_eq!(t32, t64);
        prop_assert_eq!(t64, t128);
    }

    #[test]
    fn normalization_bounds(pkts in arb_pkts(), res in 2usize..64) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(res));
        for norm in [Normalization::MaxScale, Normalization::LogMax] {
            let v = pic.to_input(norm);
            prop_assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)), "{norm:?}");
            if pic.total() > 0.0 {
                let max = v.iter().copied().fold(0.0f32, f32::max);
                prop_assert!((max - 1.0).abs() < 1e-6, "{norm:?} max {max}");
            }
        }
    }

    #[test]
    fn log_normalized_is_unit_interval(pkts in arb_pkts()) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::mini());
        let norm = log_normalized(&pic);
        prop_assert!(norm.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn average_flowpic_mass_is_mean_of_masses(
        a in arb_pkts(),
        b in arb_pkts(),
    ) {
        let cfg = FlowpicConfig::with_resolution(16);
        let mk = |pkts: Vec<Pkt>| Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        let fa = mk(a);
        let fb = mk(b);
        let avg = average_flowpic([&fa, &fb], &cfg);
        let ma = Flowpic::build(&fa.pkts, &cfg).total();
        let mb = Flowpic::build(&fb.pkts, &cfg).total();
        prop_assert!((avg.total() - (ma + mb) / 2.0).abs() < 1e-3);
    }

    #[test]
    fn early_time_series_shape_and_padding(pkts in arb_pkts(), n in 1usize..40) {
        let flow = Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        let v = early_time_series(&flow, n);
        prop_assert_eq!(v.len(), 3 * n);
        // Padding beyond the flow length is zero in all three blocks.
        for i in flow.len().min(n)..n {
            prop_assert_eq!(v[i], 0.0);
            prop_assert_eq!(v[n + i], 0.0);
            prop_assert_eq!(v[2 * n + i], 0.0);
        }
        // Inter-arrival times are non-negative.
        prop_assert!(v[2 * n..].iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn flow_statistics_are_consistent(pkts in arb_pkts()) {
        prop_assume!(!pkts.is_empty());
        let flow = Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        let s = flow_statistics(&flow);
        prop_assert_eq!(s.len(), 24);
        // Combined block (last 8): count equals flow length, min <= p25 <=
        // p50 <= p75 <= max, and the directional counts sum to the total.
        let all = &s[16..24];
        prop_assert_eq!(all[7] as usize, flow.len());
        prop_assert!(all[0] <= all[4] && all[4] <= all[5] && all[5] <= all[6] && all[6] <= all[1]);
        prop_assert_eq!(s[7] + s[15], all[7]);
    }
}
