//! Property-based tests of the flowpic representation's invariants.

use flowpic::builder::{Flowpic, FlowpicConfig};
use flowpic::incremental::IncrementalFlowpic;
use proptest::prelude::*;
use trafficgen::types::{Direction, Pkt};

/// Builds the same packets through the batch builder and the
/// incremental path, returning both pictures.
fn build_both(pkts: &[Pkt], config: &FlowpicConfig) -> (Flowpic, Flowpic) {
    let mut inc = IncrementalFlowpic::new(*config);
    for p in pkts {
        inc.push(p);
    }
    (Flowpic::build(pkts, config), inc.finish())
}

/// The window boundary contract pinned down deterministically: the
/// window is half-open `[0, window_s)`, so `ts == 0.0` lands in column
/// 0, `ts == window_s − ε` lands in the last column, and
/// `ts == window_s` is dropped — with the batch builder and the
/// incremental builder agreeing bit-for-bit.
#[test]
fn window_boundary_is_half_open_and_paths_agree() {
    for config in [
        FlowpicConfig::mini(),
        FlowpicConfig::mid(),
        FlowpicConfig::with_resolution(7),
    ] {
        let w = config.window_s;
        let eps = 1e-9;
        let pkts = vec![
            Pkt::data(0.0, 100, Direction::Upstream),
            Pkt::data(w - eps, 200, Direction::Downstream),
            Pkt::data(w, 300, Direction::Upstream),
        ];
        let mut inc = IncrementalFlowpic::new(config);
        let landed: Vec<bool> = pkts.iter().map(|p| inc.push(p)).collect();
        assert_eq!(
            landed,
            vec![true, true, false],
            "res {}: 0.0 and window_s-ε are inside, window_s is outside",
            config.resolution
        );
        let inc_pic = inc.finish();
        let batch = Flowpic::build(&pkts, &config);
        assert_eq!(
            batch.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            inc_pic.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "res {}",
            config.resolution
        );
        assert_eq!(batch.total(), 2.0);
        // Column occupancy: t = 0 in column 0, window_s − ε in the last.
        let r = config.resolution;
        let col_count = |c: usize| -> f32 { (0..r).map(|row| batch.data[row * r + c]).sum() };
        assert_eq!(col_count(0), 1.0);
        assert_eq!(col_count(r - 1), 1.0);
    }
}

prop_compose! {
    fn arb_pkts()(
        gaps in prop::collection::vec(0.0f64..2.0, 0..120),
        sizes in prop::collection::vec(1u16..=1500, 120),
        ups in prop::collection::vec(any::<bool>(), 120),
    ) -> Vec<Pkt> {
        let mut ts = 0.0;
        gaps.iter()
            .enumerate()
            .map(|(i, &g)| {
                let t = ts;
                ts += g;
                Pkt::data(
                    t,
                    sizes[i],
                    if ups[i] { Direction::Upstream } else { Direction::Downstream },
                )
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn total_equals_in_window_count(pkts in arb_pkts(), res in 2usize..128) {
        let cfg = FlowpicConfig::with_resolution(res);
        let pic = Flowpic::build(&pkts, &cfg);
        let expected = pkts.iter().filter(|p| p.ts < cfg.window_s).count();
        prop_assert_eq!(pic.total() as usize, expected);
        prop_assert!(pic.data.iter().all(|&v| v >= 0.0));
        prop_assert_eq!(pic.data.len(), res * res);
    }

    #[test]
    fn resolution_refinement_preserves_mass(pkts in arb_pkts()) {
        // Mass is identical across resolutions (only binning changes).
        let t32 = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(32)).total();
        let t64 = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(64)).total();
        let t128 = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(128)).total();
        prop_assert_eq!(t32, t64);
        prop_assert_eq!(t64, t128);
    }

    #[test]
    fn normalization_bounds(pkts in arb_pkts(), res in 2usize..64) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(res));
        for norm in [Normalization::MaxScale, Normalization::LogMax] {
            let v = pic.to_input(norm);
            prop_assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)), "{norm:?}");
            if pic.total() > 0.0 {
                let max = v.iter().copied().fold(0.0f32, f32::max);
                prop_assert!((max - 1.0).abs() < 1e-6, "{norm:?} max {max}");
            }
        }
    }

    #[test]
    fn log_normalized_is_unit_interval(pkts in arb_pkts()) {
        let pic = Flowpic::build(&pkts, &FlowpicConfig::mini());
        let norm = log_normalized(&pic);
        prop_assert!(norm.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn average_flowpic_mass_is_mean_of_masses(
        a in arb_pkts(),
        b in arb_pkts(),
    ) {
        let cfg = FlowpicConfig::with_resolution(16);
        let mk = |pkts: Vec<Pkt>| Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        let fa = mk(a);
        let fb = mk(b);
        let avg = average_flowpic([&fa, &fb], &cfg);
        let ma = Flowpic::build(&fa.pkts, &cfg).total();
        let mb = Flowpic::build(&fb.pkts, &cfg).total();
        prop_assert!((avg.total() - (ma + mb) / 2.0).abs() < 1e-3);
    }

    #[test]
    fn early_time_series_shape_and_padding(pkts in arb_pkts(), n in 1usize..40) {
        let flow = Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        let v = early_time_series(&flow, n);
        prop_assert_eq!(v.len(), 3 * n);
        // Padding beyond the flow length is zero in all three blocks.
        for i in flow.len().min(n)..n {
            prop_assert_eq!(v[i], 0.0);
            prop_assert_eq!(v[n + i], 0.0);
            prop_assert_eq!(v[2 * n + i], 0.0);
        }
        // Inter-arrival times are non-negative.
        prop_assert!(v[2 * n..].iter().all(|&x| x >= 0.0));
    }

    /// Randomized boundary-packet property: for any window and
    /// resolution, packets at `ts ∈ {0.0, window_s − ε, window_s}` are
    /// kept/kept/dropped, and the batch and incremental builders agree
    /// bit-for-bit on the resulting picture.
    #[test]
    fn boundary_packets_agree_bit_for_bit(
        res in 1usize..64,
        window in 0.5f64..30.0,
        size in 1u16..=1500,
        extra in arb_pkts(),
    ) {
        let config = FlowpicConfig { resolution: res, window_s: window, include_acks: true };
        // A relative ε: window·(1 − 1e-12) < window holds in f64 for the
        // whole generated range.
        let eps = window * 1e-12;
        let mut pkts = vec![
            Pkt::data(0.0, size, Direction::Upstream),
            Pkt::data(window - eps, size, Direction::Downstream),
            Pkt::data(window, size, Direction::Upstream),
        ];
        pkts.extend(extra);
        let (batch, inc) = build_both(&pkts, &config);
        let batch_bits: Vec<u32> = batch.data.iter().map(|v| v.to_bits()).collect();
        let inc_bits: Vec<u32> = inc.data.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(batch_bits, inc_bits);
        // The boundary packet itself is outside the half-open window.
        let mut only_boundary = IncrementalFlowpic::new(config);
        prop_assert!(!only_boundary.push(&Pkt::data(window, size, Direction::Upstream)));
        prop_assert!(only_boundary.push(&Pkt::data(0.0, size, Direction::Upstream)));
        prop_assert!(only_boundary.push(&Pkt::data(window - eps, size, Direction::Upstream)));
    }

    #[test]
    fn flow_statistics_are_consistent(pkts in arb_pkts()) {
        prop_assume!(!pkts.is_empty());
        let flow = Flow {
            id: 0, class: 0, partition: Partition::Unpartitioned,
            background: false, pkts,
        };
        let s = flow_statistics(&flow);
        prop_assert_eq!(s.len(), 24);
        // Combined block (last 8): count equals flow length, min <= p25 <=
        // p50 <= p75 <= max, and the directional counts sum to the total.
        let all = &s[16..24];
        prop_assert_eq!(all[7] as usize, flow.len());
        prop_assert!(all[0] <= all[4] && all[4] <= all[5] && all[5] <= all[6] && all[6] <= all[1]);
        prop_assert_eq!(s[7] + s[15], all[7]);
    }
}
