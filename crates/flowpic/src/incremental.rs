//! Per-packet incremental flowpic construction — the online counterpart
//! of [`Flowpic::build`].
//!
//! A streaming flow tracker sees packets one at a time and cannot afford
//! to re-rasterize the whole flow on every arrival. Because the batch
//! builder is an order-independent per-packet accumulation (`+= 1.0`
//! into a bin computed from that packet alone), the incremental version
//! is *bit-identical by construction*: [`IncrementalFlowpic::push`] uses
//! the exact same skip conditions and bin expressions as
//! [`Flowpic::build`], so after pushing any packet sequence the picture
//! equals the batch build of that sequence — asserted cell-for-cell by
//! the property tests in this module.

use crate::builder::{Flowpic, FlowpicConfig};
use trafficgen::types::Pkt;

/// A flowpic under construction, updated one packet at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalFlowpic {
    config: FlowpicConfig,
    pic: Flowpic,
    /// Packets accumulated into the picture (in-window, ACK-filtered).
    counted: usize,
}

impl IncrementalFlowpic {
    /// An empty picture under `config`.
    pub fn new(config: FlowpicConfig) -> IncrementalFlowpic {
        IncrementalFlowpic {
            config,
            pic: Flowpic::zeros(config.resolution),
            counted: 0,
        }
    }

    /// Accumulates one packet. Returns `true` when the packet landed in
    /// the histogram, `false` when it was skipped (excluded ACK or
    /// outside the time window) — mirroring [`Flowpic::build`]'s skip
    /// conditions expression for expression.
    pub fn push(&mut self, p: &Pkt) -> bool {
        if p.is_ack && !self.config.include_acks {
            return false;
        }
        if p.ts < 0.0 || p.ts >= self.config.window_s {
            return false;
        }
        let r = self.config.resolution;
        let col = ((p.ts / self.config.time_bin()) as usize).min(r - 1);
        let row = ((p.size as f64 / self.config.size_bin()) as usize).min(r - 1);
        self.pic.data[row * r + col] += 1.0;
        self.counted += 1;
        true
    }

    /// Packets counted into the picture so far.
    pub fn counted(&self) -> usize {
        self.counted
    }

    /// The construction parameters.
    pub fn config(&self) -> &FlowpicConfig {
        &self.config
    }

    /// Read-only view of the picture in its current state.
    pub fn picture(&self) -> &Flowpic {
        &self.pic
    }

    /// Finishes construction, handing the picture over.
    pub fn finish(self) -> Flowpic {
        self.pic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trafficgen::types::Direction;

    fn build_both(pkts: &[Pkt], config: &FlowpicConfig) -> (Flowpic, Flowpic) {
        let mut inc = IncrementalFlowpic::new(*config);
        for p in pkts {
            inc.push(p);
        }
        (Flowpic::build(pkts, config), inc.finish())
    }

    /// SplitMix64 — deterministic packet streams without the rand crate.
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_stream(seed: u64, n: usize) -> Vec<Pkt> {
        (0..n)
            .map(|i| {
                let h = splitmix64(seed.wrapping_add(i as u64));
                // Timestamps straddle the window edge (up to 20 s > 15 s
                // window) so the skip path is exercised too.
                let ts = (h % 20_000) as f64 / 1000.0;
                let size = ((h >> 16) % 1501) as u16;
                let dir = if h & 1 == 0 {
                    Direction::Upstream
                } else {
                    Direction::Downstream
                };
                if (h >> 32).is_multiple_of(5) {
                    Pkt::ack(ts, dir)
                } else {
                    Pkt::data(ts, size, dir)
                }
            })
            .collect()
    }

    #[test]
    fn incremental_equals_batch_on_randomized_streams() {
        for seed in 0..20 {
            let pkts = random_stream(seed * 7919, 200);
            for config in [
                FlowpicConfig::mini(),
                FlowpicConfig::mid(),
                FlowpicConfig::with_resolution(7),
                FlowpicConfig {
                    include_acks: false,
                    ..FlowpicConfig::mini()
                },
            ] {
                let (batch, inc) = build_both(&pkts, &config);
                assert_eq!(
                    batch.data, inc.data,
                    "seed {seed}, res {}",
                    config.resolution
                );
            }
        }
    }

    #[test]
    fn push_reports_counted_packets() {
        let cfg = FlowpicConfig {
            include_acks: false,
            ..FlowpicConfig::mini()
        };
        let mut inc = IncrementalFlowpic::new(cfg);
        assert!(inc.push(&Pkt::data(0.5, 100, Direction::Upstream)));
        assert!(!inc.push(&Pkt::ack(0.6, Direction::Downstream)), "ACK");
        assert!(
            !inc.push(&Pkt::data(15.0, 100, Direction::Upstream)),
            "past window"
        );
        assert!(
            !inc.push(&Pkt::data(-0.1, 100, Direction::Upstream)),
            "negative ts"
        );
        assert_eq!(inc.counted(), 1);
        assert_eq!(inc.picture().total(), 1.0);
    }

    #[test]
    fn partial_picture_is_observable_mid_stream() {
        let cfg = FlowpicConfig::mini();
        let pkts = random_stream(3, 50);
        let mut inc = IncrementalFlowpic::new(cfg);
        for (i, p) in pkts.iter().enumerate() {
            inc.push(p);
            // At every prefix the partial picture equals the batch build
            // of that prefix.
            let batch = Flowpic::build(&pkts[..=i], &cfg);
            assert_eq!(inc.picture().data, batch.data, "prefix {}", i + 1);
        }
    }

    proptest! {
        #[test]
        fn incremental_matches_batch(
            raw in proptest::collection::vec((0.0f64..20.0, 0u16..=1500, any::<bool>()), 0..300),
            include_acks in any::<bool>(),
            res in 1usize..80,
        ) {
            let pkts: Vec<Pkt> = raw
                .iter()
                .map(|&(ts, size, is_ack)| {
                    if is_ack {
                        Pkt::ack(ts, Direction::Upstream)
                    } else {
                        Pkt::data(ts, size, Direction::Downstream)
                    }
                })
                .collect();
            let config = FlowpicConfig {
                resolution: res,
                window_s: 15.0,
                include_acks,
            };
            let (batch, inc) = build_both(&pkts, &config);
            prop_assert_eq!(batch.data, inc.data);
        }
    }
}
