//! Flowpic construction.
//!
//! The geometry follows the Ref-Paper exactly: for resolution `R` over a
//! `T = 15 s` window, time bins are `T/R` seconds wide (469.8 ms at 32×32)
//! and size bins are `1500/R` bytes wide (≈46 B at 32×32). Row 0 is packet
//! size 0 ("zero length on the top", paper Sec. 4.2.3) and column 0 is
//! `t = 0`, so the picture reads left-to-right in time, top-to-bottom in
//! size.

use serde::{Deserialize, Serialize};
use trafficgen::types::{Pkt, MAX_PKT_SIZE};

/// Flowpic construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowpicConfig {
    /// Square resolution `R` (the paper uses 32, 64 and 1500).
    pub resolution: usize,
    /// Time window in seconds (the paper always uses the first 15 s).
    ///
    /// The window is the **half-open** interval `[0, window_s)`: a
    /// packet at exactly `ts == window_s` is outside and dropped, while
    /// `ts == 0.0` is the first cell of column 0. (Were the boundary
    /// included, `ts == window_s` would land in a non-existent column
    /// `R` and need a second clamp rule; half-open keeps every column
    /// exactly `time_bin()` wide.) [`Flowpic::build`] and
    /// `flowpic::incremental` apply this interval with the same
    /// expression, which the boundary property tests pin down.
    pub window_s: f64,
    /// Whether bare-ACK packets contribute to the histogram. Curated
    /// datasets have ACKs already removed; raw ones use `false` here to get
    /// the same effect at rasterization time.
    pub include_acks: bool,
}

impl FlowpicConfig {
    /// The paper's mini-flowpic: 32×32 over 15 s.
    pub fn mini() -> Self {
        FlowpicConfig {
            resolution: 32,
            window_s: 15.0,
            include_acks: true,
        }
    }

    /// 64×64 over 15 s.
    pub fn mid() -> Self {
        FlowpicConfig {
            resolution: 64,
            window_s: 15.0,
            include_acks: true,
        }
    }

    /// The original full-resolution flowpic: 1500×1500 over 15 s.
    pub fn full() -> Self {
        FlowpicConfig {
            resolution: 1500,
            window_s: 15.0,
            include_acks: true,
        }
    }

    /// Arbitrary square resolution over 15 s.
    pub fn with_resolution(resolution: usize) -> Self {
        assert!(resolution >= 1);
        FlowpicConfig {
            resolution,
            window_s: 15.0,
            include_acks: true,
        }
    }

    /// Width of one time bin in seconds.
    pub fn time_bin(&self) -> f64 {
        self.window_s / self.resolution as f64
    }

    /// Width of one size bin in bytes.
    pub fn size_bin(&self) -> f64 {
        MAX_PKT_SIZE as f64 / self.resolution as f64
    }
}

/// How a flowpic's raw counts are mapped to model input values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Normalization {
    /// Raw packet counts.
    Raw,
    /// Counts divided by the picture's maximum (max = 1).
    MaxScale,
    /// `ln(1 + count)` then divided by the maximum — the log scale the
    /// paper uses for its heatmaps, and the default training input since it
    /// compresses the dynamic range of dense bursts.
    LogMax,
}

/// A rasterized flowpic: `resolution × resolution` packet counts,
/// row-major with `row = size bin`, `col = time bin`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flowpic {
    /// Square resolution.
    pub resolution: usize,
    /// Row-major counts, length `resolution * resolution`.
    pub data: Vec<f32>,
}

impl Flowpic {
    /// Builds the flowpic of `pkts` under `config`.
    ///
    /// Packets outside the half-open window `[0, window_s)` are ignored
    /// (`ts == window_s` is already out — see [`FlowpicConfig::window_s`]),
    /// as are ACKs when `config.include_acks` is false. Out-of-range
    /// sizes are clamped into the last size bin (sizes are validated
    /// ≤ 1500 upstream, but the builder is total regardless).
    pub fn build(pkts: &[Pkt], config: &FlowpicConfig) -> Flowpic {
        let r = config.resolution;
        let mut data = vec![0f32; r * r];
        let t_bin = config.time_bin();
        let s_bin = config.size_bin();
        for p in pkts {
            if p.is_ack && !config.include_acks {
                continue;
            }
            if p.ts < 0.0 || p.ts >= config.window_s {
                continue;
            }
            let col = ((p.ts / t_bin) as usize).min(r - 1);
            let row = ((p.size as f64 / s_bin) as usize).min(r - 1);
            data[row * r + col] += 1.0;
        }
        Flowpic {
            resolution: r,
            data,
        }
    }

    /// An all-zero flowpic of the given resolution.
    pub fn zeros(resolution: usize) -> Flowpic {
        Flowpic {
            resolution,
            data: vec![0.0; resolution * resolution],
        }
    }

    /// Cell accessor (`row = size bin`, `col = time bin`).
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.resolution + col]
    }

    /// Mutable cell accessor.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        &mut self.data[row * self.resolution + col]
    }

    /// Total packet count in the picture.
    pub fn total(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum cell value.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(0.0, f32::max)
    }

    /// Returns the model-input view of the picture under `norm`.
    pub fn to_input(&self, norm: Normalization) -> Vec<f32> {
        match norm {
            Normalization::Raw => self.data.clone(),
            Normalization::MaxScale => {
                let max = self.max();
                if max == 0.0 {
                    self.data.clone()
                } else {
                    self.data.iter().map(|&v| v / max).collect()
                }
            }
            Normalization::LogMax => {
                let logged: Vec<f32> = self.data.iter().map(|&v| (1.0 + v).ln()).collect();
                let max = logged.iter().copied().fold(0.0, f32::max);
                if max == 0.0 {
                    logged
                } else {
                    logged.iter().map(|&v| v / max).collect()
                }
            }
        }
    }

    /// Element-wise accumulation (panics on resolution mismatch). Used to
    /// build the per-class average flowpics of paper Fig. 4.
    pub fn accumulate(&mut self, other: &Flowpic) {
        assert_eq!(self.resolution, other.resolution, "resolution mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every cell by `factor`.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::Direction;

    fn pkt(ts: f64, size: u16) -> Pkt {
        Pkt::data(ts, size, Direction::Downstream)
    }

    #[test]
    fn bin_geometry_matches_paper() {
        let cfg = FlowpicConfig::mini();
        // Paper Sec. 2.2: "a 32×32 flowpic leads to 469.8ms time bins and
        // 46B packet size bins".
        assert!((cfg.time_bin() - 0.46875).abs() < 1e-9);
        assert!((cfg.size_bin() - 46.875).abs() < 1e-9);
    }

    #[test]
    fn packets_land_in_expected_cells() {
        let cfg = FlowpicConfig::mini();
        let fp = Flowpic::build(
            &[
                pkt(0.0, 0),     // row 0, col 0
                pkt(0.0, 46),    // still row 0 (46 < 46.875)
                pkt(0.0, 47),    // row 1
                pkt(14.9, 1500), // last col, last row (clamped)
                pkt(7.5, 750),   // middle
            ],
            &cfg,
        );
        assert_eq!(fp.get(0, 0), 2.0);
        assert_eq!(fp.get(1, 0), 1.0);
        assert_eq!(fp.get(31, 31), 1.0);
        assert_eq!(fp.get(16, 16), 1.0);
        assert_eq!(fp.total(), 5.0);
    }

    #[test]
    fn window_cutoff() {
        let cfg = FlowpicConfig::mini();
        let fp = Flowpic::build(&[pkt(0.0, 100), pkt(15.0, 100), pkt(20.0, 100)], &cfg);
        // Only the first packet is inside [0, 15).
        assert_eq!(fp.total(), 1.0);
    }

    #[test]
    fn ack_exclusion() {
        let mut cfg = FlowpicConfig::mini();
        let pkts = vec![pkt(0.0, 100), Pkt::ack(0.1, Direction::Upstream)];
        assert_eq!(Flowpic::build(&pkts, &cfg).total(), 2.0);
        cfg.include_acks = false;
        assert_eq!(Flowpic::build(&pkts, &cfg).total(), 1.0);
    }

    #[test]
    fn empty_input_yields_zero_picture() {
        let fp = Flowpic::build(&[], &FlowpicConfig::mini());
        assert_eq!(fp.total(), 0.0);
        assert_eq!(fp.data.len(), 32 * 32);
    }

    #[test]
    fn resolutions_preserve_total() {
        let pkts: Vec<Pkt> = (0..200)
            .map(|i| pkt(i as f64 * 0.07, (i * 7 % 1500) as u16))
            .collect();
        for res in [16, 32, 64, 256, 1500] {
            let fp = Flowpic::build(&pkts, &FlowpicConfig::with_resolution(res));
            assert_eq!(fp.total(), 200.0, "resolution {res}");
        }
    }

    #[test]
    fn normalization_modes() {
        let cfg = FlowpicConfig::mini();
        let fp = Flowpic::build(
            &[pkt(0.0, 0), pkt(0.01, 0), pkt(0.02, 0), pkt(5.0, 700)],
            &cfg,
        );
        let raw = fp.to_input(Normalization::Raw);
        assert_eq!(raw.iter().copied().fold(0.0, f32::max), 3.0);
        let maxed = fp.to_input(Normalization::MaxScale);
        assert_eq!(maxed.iter().copied().fold(0.0, f32::max), 1.0);
        let log = fp.to_input(Normalization::LogMax);
        assert_eq!(log.iter().copied().fold(0.0, f32::max), 1.0);
        // Log compresses the ratio: 3:1 in raw becomes ln4:ln2 = 2:1 in log.
        let (r, c) = (0, 10); // cell of the 5.0s packet: col = 5/0.46875 = 10
        let ratio_raw = raw[0] / raw[(700.0_f32 / 46.875).floor() as usize * 32 + c];
        let ratio_log = log[0] / log[(700.0_f32 / 46.875).floor() as usize * 32 + c];
        assert!(ratio_log < ratio_raw);
        let _ = r;
    }

    #[test]
    fn normalization_of_empty_picture_is_total() {
        let fp = Flowpic::zeros(8);
        for norm in [
            Normalization::Raw,
            Normalization::MaxScale,
            Normalization::LogMax,
        ] {
            let v = fp.to_input(norm);
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn accumulate_and_scale() {
        let cfg = FlowpicConfig::with_resolution(4);
        let mut acc = Flowpic::zeros(4);
        let fp = Flowpic::build(&[pkt(0.0, 0)], &cfg);
        acc.accumulate(&fp);
        acc.accumulate(&fp);
        assert_eq!(acc.get(0, 0), 2.0);
        acc.scale(0.5);
        assert_eq!(acc.get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "resolution mismatch")]
    fn accumulate_rejects_mismatched_resolution() {
        Flowpic::zeros(4).accumulate(&Flowpic::zeros(8));
    }
}

/// A direction-aware flowpic: separate histograms for upstream and
/// downstream packets — the reformulation the Ref-Paper's footnote 3
/// mentions but does not evaluate ("the representation could be
/// reformulated to take \[directionality\] into account"). Consumed as a
/// 2-channel CNN input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionalFlowpic {
    /// Histogram of upstream packets.
    pub up: Flowpic,
    /// Histogram of downstream packets.
    pub down: Flowpic,
}

impl DirectionalFlowpic {
    /// Builds the two per-direction histograms under `config`.
    pub fn build(pkts: &[trafficgen::types::Pkt], config: &FlowpicConfig) -> DirectionalFlowpic {
        use trafficgen::types::Direction;
        let up: Vec<trafficgen::types::Pkt> = pkts
            .iter()
            .copied()
            .filter(|p| p.dir == Direction::Upstream)
            .collect();
        let down: Vec<trafficgen::types::Pkt> = pkts
            .iter()
            .copied()
            .filter(|p| p.dir == Direction::Downstream)
            .collect();
        DirectionalFlowpic {
            up: Flowpic::build(&up, config),
            down: Flowpic::build(&down, config),
        }
    }

    /// 2-channel model input: `[up | down]`, each channel normalized
    /// independently under `norm`.
    pub fn to_input(&self, norm: Normalization) -> Vec<f32> {
        let mut v = self.up.to_input(norm);
        v.extend(self.down.to_input(norm));
        v
    }

    /// Total packets across both channels.
    pub fn total(&self) -> f32 {
        self.up.total() + self.down.total()
    }
}

#[cfg(test)]
mod directional_tests {
    use super::*;
    use trafficgen::types::{Direction, Pkt};

    #[test]
    fn channels_partition_the_packets() {
        let pkts = vec![
            Pkt::data(0.0, 100, Direction::Upstream),
            Pkt::data(0.1, 1200, Direction::Downstream),
            Pkt::data(0.2, 1300, Direction::Downstream),
        ];
        let cfg = FlowpicConfig::mini();
        let d = DirectionalFlowpic::build(&pkts, &cfg);
        assert_eq!(d.up.total(), 1.0);
        assert_eq!(d.down.total(), 2.0);
        // The union equals the direction-blind picture.
        let blind = Flowpic::build(&pkts, &cfg);
        let mut merged = d.up.clone();
        merged.accumulate(&d.down);
        assert_eq!(merged, blind);
    }

    #[test]
    fn input_is_two_channels() {
        let pkts = vec![Pkt::data(0.0, 100, Direction::Upstream)];
        let d = DirectionalFlowpic::build(&pkts, &FlowpicConfig::mini());
        assert_eq!(d.to_input(Normalization::LogMax).len(), 2 * 1024);
        assert_eq!(d.total(), 1.0);
    }
}
