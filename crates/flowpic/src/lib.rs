//! # flowpic — the paper's input representation
//!
//! A *flowpic* (Shapira & Shavitt, INFOCOM WKSHPS'19) is a 2-D histogram of
//! a flow's packet-size evolution over time: the first `T` seconds of the
//! flow and the packet-size range `0..=1500` are both split into `R` bins,
//! and cell `(size_bin, time_bin)` tallies how many packets of that size
//! arrived in that time window. Stacking the per-window size histograms
//! yields a "picture" of the flow dynamics that CNNs classify like images.
//!
//! The Ref-Paper uses `T = 15 s` and resolutions `R ∈ {32, 64, 1500}` (the
//! 32×32 variant is the "mini-flowpic"). Direction is deliberately ignored
//! (Ref-Paper footnote 3). This crate provides:
//!
//! * [`builder`] — flowpic construction from packet series;
//! * [`incremental`] — per-packet incremental construction for online
//!   serving, bit-identical to the batch builder;
//! * [`features`] — the flattened-flowpic and early-time-series feature
//!   vectors used by the classic-ML baseline (paper Table 3);
//! * [`render`] — per-class average flowpics and terminal/PGM rendering
//!   (paper Fig. 1 and Fig. 4).

pub mod builder;
pub mod features;
pub mod incremental;
pub mod render;

pub use builder::{DirectionalFlowpic, Flowpic, FlowpicConfig, Normalization};
pub use incremental::IncrementalFlowpic;
