//! Feature vectors for the classic-ML baseline (paper Table 3, goal G0).
//!
//! The paper's XGBoost baseline compares two inputs:
//!
//! * the **mini-flowpic**, a 32×32 picture flattened into 1 024 values;
//! * the **early time series** of the first 10 packets — size, direction
//!   and inter-arrival time, 3×10 = 30 values.
//!
//! This module produces both, plus the 24 statistical flow metrics used as
//! the regression target by the Rezaei & Liu reproduction (paper App. D.3).

use crate::builder::{Flowpic, FlowpicConfig, Normalization};
use trafficgen::types::{Flow, Pkt};

/// Flattened flowpic feature vector (`resolution²` values).
pub fn flowpic_flat(flow: &Flow, config: &FlowpicConfig, norm: Normalization) -> Vec<f32> {
    Flowpic::build(&flow.pkts, config).to_input(norm)
}

/// Early time-series features: size, signed direction and inter-arrival
/// time of the first `n` packets, zero-padded, concatenated feature-major
/// (`[sizes… | dirs… | intertimes…]`, `3n` values). The paper uses `n=10`.
pub fn early_time_series(flow: &Flow, n: usize) -> Vec<f32> {
    let mut sizes = vec![0f32; n];
    let mut dirs = vec![0f32; n];
    let mut inter = vec![0f32; n];
    let mut prev_ts = 0f64;
    for (i, p) in flow.pkts.iter().take(n).enumerate() {
        sizes[i] = p.size as f32;
        dirs[i] = p.dir.sign();
        inter[i] = (p.ts - prev_ts) as f32;
        prev_ts = p.ts;
    }
    let mut out = sizes;
    out.extend_from_slice(&dirs);
    out.extend_from_slice(&inter);
    out
}

/// [`early_time_series`] scaled into roughly unit range for neural
/// training: sizes divided by 1500, directions unchanged (±1),
/// inter-arrival times compressed with `ln(1 + Δt)` (bursty traffic spans
/// microseconds to seconds; the log keeps both ends informative).
pub fn early_time_series_normalized(flow: &Flow, n: usize) -> Vec<f32> {
    let mut feats = early_time_series(flow, n);
    for v in feats[..n].iter_mut() {
        *v /= 1500.0;
    }
    for v in feats[2 * n..].iter_mut() {
        *v = (1.0 + *v).ln();
    }
    feats
}

/// The 24 statistical flow metrics of Rezaei & Liu's regression
/// pre-training task (paper App. D.3): {min, max, mean, std, 25th/50th/75th
/// percentile, count} of packet size for {upstream, downstream, both}.
pub fn flow_statistics(flow: &Flow) -> Vec<f32> {
    let up: Vec<f32> = flow
        .pkts
        .iter()
        .filter(|p| p.dir.sign() > 0.0)
        .map(|p| p.size as f32)
        .collect();
    let down: Vec<f32> = flow
        .pkts
        .iter()
        .filter(|p| p.dir.sign() < 0.0)
        .map(|p| p.size as f32)
        .collect();
    let all: Vec<f32> = flow.pkts.iter().map(|p| p.size as f32).collect();
    let mut out = Vec::with_capacity(24);
    for series in [&up, &down, &all] {
        out.extend_from_slice(&series_stats(series));
    }
    out
}

/// {min, max, mean, std, p25, p50, p75, count} of a series; zeros when the
/// series is empty.
fn series_stats(series: &[f32]) -> [f32; 8] {
    if series.is_empty() {
        return [0.0; 8];
    }
    let n = series.len() as f32;
    let mut sorted = series.to_vec();
    sorted.sort_by(f32::total_cmp);
    let mean = series.iter().sum::<f32>() / n;
    let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
    let pct = |q: f32| -> f32 {
        let idx = (q * (sorted.len() - 1) as f32).round() as usize;
        sorted[idx]
    };
    [
        sorted[0],
        sorted[sorted.len() - 1],
        mean,
        var.sqrt(),
        pct(0.25),
        pct(0.5),
        pct(0.75),
        n,
    ]
}

/// Normalizes the statistics vector into roughly unit scale for regression
/// training (sizes by 1500, counts by `count_scale`).
pub fn normalize_statistics(stats: &[f32], count_scale: f32) -> Vec<f32> {
    stats
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % 8 == 7 {
                v / count_scale
            } else {
                v / 1500.0
            }
        })
        .collect()
}

/// Returns the first `n` packets as a packet slice truncated to the
/// flowpic window — a convenience for pipelines that combine both views.
pub fn window_pkts(flow: &Flow, window_s: f64) -> Vec<Pkt> {
    flow.pkts
        .iter()
        .copied()
        .take_while(|p| p.ts < window_s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::{Direction, Partition};

    fn flow(pkts: Vec<Pkt>) -> Flow {
        Flow {
            id: 0,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts,
        }
    }

    #[test]
    fn early_time_series_layout() {
        let f = flow(vec![
            Pkt::data(0.0, 100, Direction::Upstream),
            Pkt::data(0.5, 1500, Direction::Downstream),
        ]);
        let feats = early_time_series(&f, 4);
        assert_eq!(feats.len(), 12);
        assert_eq!(&feats[0..4], &[100.0, 1500.0, 0.0, 0.0]); // sizes
        assert_eq!(&feats[4..8], &[1.0, -1.0, 0.0, 0.0]); // dirs
        assert_eq!(&feats[8..12], &[0.0, 0.5, 0.0, 0.0]); // intertimes
    }

    #[test]
    fn early_time_series_truncates_long_flows() {
        let pkts: Vec<Pkt> = (0..50)
            .map(|i| Pkt::data(i as f64, 10, Direction::Upstream))
            .collect();
        let feats = early_time_series(&flow(pkts), 10);
        assert_eq!(feats.len(), 30);
        assert!(feats[..10].iter().all(|&s| s == 10.0));
    }

    #[test]
    fn flowpic_flat_dimension() {
        let f = flow(vec![Pkt::data(0.0, 100, Direction::Upstream)]);
        let v = flowpic_flat(&f, &FlowpicConfig::mini(), Normalization::Raw);
        assert_eq!(v.len(), 1024);
        assert_eq!(v.iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn flow_statistics_shape_and_values() {
        let f = flow(vec![
            Pkt::data(0.0, 100, Direction::Upstream),
            Pkt::data(0.1, 200, Direction::Upstream),
            Pkt::data(0.2, 1000, Direction::Downstream),
        ]);
        let s = flow_statistics(&f);
        assert_eq!(s.len(), 24);
        // Upstream block: min 100, max 200, mean 150, count 2.
        assert_eq!(s[0], 100.0);
        assert_eq!(s[1], 200.0);
        assert_eq!(s[2], 150.0);
        assert_eq!(s[7], 2.0);
        // Downstream block: single value 1000.
        assert_eq!(s[8], 1000.0);
        assert_eq!(s[11], 0.0); // std of single value
        assert_eq!(s[15], 1.0);
        // Combined block count.
        assert_eq!(s[23], 3.0);
    }

    #[test]
    fn flow_statistics_empty_direction() {
        let f = flow(vec![Pkt::data(0.0, 100, Direction::Upstream)]);
        let s = flow_statistics(&f);
        // Downstream block all zero.
        assert!(s[8..16].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalize_statistics_scales() {
        let stats = vec![
            1500.0, 1500.0, 1500.0, 1500.0, 1500.0, 1500.0, 1500.0, 100.0,
        ];
        let n = normalize_statistics(&stats, 100.0);
        assert!(n[..7].iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!((n[7] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn window_pkts_cuts_at_window() {
        let f = flow(vec![
            Pkt::data(0.0, 10, Direction::Upstream),
            Pkt::data(14.9, 10, Direction::Upstream),
            Pkt::data(15.1, 10, Direction::Upstream),
        ]);
        assert_eq!(window_pkts(&f, 15.0).len(), 2);
    }
}

#[cfg(test)]
mod normalized_tests {
    use super::*;
    use trafficgen::types::{Direction, Partition};

    #[test]
    fn normalized_features_are_unit_scale() {
        let f = Flow {
            id: 0,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts: vec![
                Pkt::data(0.0, 1500, Direction::Upstream),
                Pkt::data(10.0, 750, Direction::Downstream),
            ],
        };
        let v = early_time_series_normalized(&f, 4);
        assert_eq!(v.len(), 12);
        assert_eq!(v[0], 1.0); // 1500/1500
        assert_eq!(v[1], 0.5);
        assert_eq!(v[4], 1.0); // direction untouched
        assert_eq!(v[5], -1.0);
        // intertime 10s -> ln(11) ≈ 2.4, bounded.
        assert!((v[9] - 11f32.ln()).abs() < 1e-6);
        assert!(v.iter().all(|x| x.abs() <= 3.0));
    }
}
