//! Average flowpics and rendering (paper Fig. 1 and Fig. 4).
//!
//! The paper diagnoses the `human` data shift *visually*, by averaging the
//! 32×32 flowpic of every flow of a class within a partition and comparing
//! partitions side by side. This module builds those averages and renders
//! any flowpic as an ASCII heatmap (for terminal inspection and the
//! examples) or as a binary PGM image (for external viewers), using the
//! same log-scale max-min normalization as the paper's heatmaps.

use crate::builder::{Flowpic, FlowpicConfig};
use trafficgen::types::Flow;

/// Averages the flowpics of `flows` (cell-wise mean of raw counts).
/// Returns an all-zero picture when `flows` is empty.
pub fn average_flowpic<'a, I>(flows: I, config: &FlowpicConfig) -> Flowpic
where
    I: IntoIterator<Item = &'a Flow>,
{
    let mut acc = Flowpic::zeros(config.resolution);
    let mut n = 0usize;
    for f in flows {
        acc.accumulate(&Flowpic::build(&f.pkts, config));
        n += 1;
    }
    if n > 0 {
        acc.scale(1.0 / n as f32);
    }
    acc
}

/// Log-scales a picture into `[0, 1]` the way the paper's heatmaps do:
/// `ln(1+v)` normalized between the picture's own min and max.
pub fn log_normalized(pic: &Flowpic) -> Vec<f32> {
    let logged: Vec<f32> = pic.data.iter().map(|&v| (1.0 + v.max(0.0)).ln()).collect();
    let max = logged.iter().copied().fold(f32::MIN, f32::max);
    let min = logged.iter().copied().fold(f32::MAX, f32::min);
    if max <= min {
        return vec![0.0; logged.len()];
    }
    logged.iter().map(|&v| (v - min) / (max - min)).collect()
}

/// Renders a flowpic as an ASCII heatmap, one row per size bin (size zero
/// on top, matching the paper's orientation), darker glyphs for higher
/// packet counts.
pub fn ascii_heatmap(pic: &Flowpic) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let norm = log_normalized(pic);
    let r = pic.resolution;
    let mut out = String::with_capacity(r * (r + 1));
    for row in 0..r {
        for col in 0..r {
            let v = norm[row * r + col];
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders a flowpic as a binary PGM (P5) image, 8-bit grayscale, with the
/// paper's log-scale normalization. Higher counts are darker (as in the
/// paper's figures).
pub fn to_pgm(pic: &Flowpic) -> Vec<u8> {
    let norm = log_normalized(pic);
    let r = pic.resolution;
    let mut out = format!("P5\n{r} {r}\n255\n").into_bytes();
    out.extend(norm.iter().map(|&v| 255 - (v * 255.0).round() as u8));
    out
}

/// Structural difference between two average flowpics: the L1 distance of
/// their log-normalized views, in `[0, 2·R²]`. Used by tests to quantify
/// the injected data shift the way the paper's Fig. 4 shows it visually.
pub fn shift_distance(a: &Flowpic, b: &Flowpic) -> f32 {
    assert_eq!(a.resolution, b.resolution);
    log_normalized(a)
        .iter()
        .zip(log_normalized(b))
        .map(|(x, y)| (x - y).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::types::{Direction, Partition, Pkt};

    fn flow(pkts: Vec<Pkt>) -> Flow {
        Flow {
            id: 0,
            class: 0,
            partition: Partition::Unpartitioned,
            background: false,
            pkts,
        }
    }

    #[test]
    fn average_of_identical_flows_is_the_flow() {
        let cfg = FlowpicConfig::with_resolution(8);
        let f = flow(vec![Pkt::data(0.0, 100, Direction::Downstream)]);
        let avg = average_flowpic([&f, &f, &f], &cfg);
        assert_eq!(avg.total(), 1.0);
    }

    #[test]
    fn average_of_empty_set_is_zero() {
        let cfg = FlowpicConfig::with_resolution(8);
        let avg = average_flowpic(std::iter::empty(), &cfg);
        assert_eq!(avg.total(), 0.0);
    }

    #[test]
    fn log_normalized_range() {
        let cfg = FlowpicConfig::with_resolution(8);
        let f = flow(vec![
            Pkt::data(0.0, 100, Direction::Downstream),
            Pkt::data(0.0, 100, Direction::Downstream),
            Pkt::data(3.0, 1400, Direction::Downstream),
        ]);
        let pic = Flowpic::build(&f.pkts, &cfg);
        let norm = log_normalized(&pic);
        let max = norm.iter().copied().fold(f32::MIN, f32::max);
        let min = norm.iter().copied().fold(f32::MAX, f32::min);
        assert_eq!(max, 1.0);
        assert_eq!(min, 0.0);
    }

    #[test]
    fn log_normalized_flat_picture() {
        let pic = Flowpic::zeros(4);
        assert!(log_normalized(&pic).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ascii_heatmap_shape() {
        let pic = Flowpic::zeros(8);
        let art = ascii_heatmap(&pic);
        assert_eq!(art.lines().count(), 8);
        assert!(art.lines().all(|l| l.chars().count() == 8));
    }

    #[test]
    fn pgm_header_and_size() {
        let pic = Flowpic::zeros(16);
        let pgm = to_pgm(&pic);
        assert!(pgm.starts_with(b"P5\n16 16\n255\n"));
        assert_eq!(pgm.len(), b"P5\n16 16\n255\n".len() + 256);
    }

    #[test]
    fn shift_distance_detects_difference() {
        let cfg = FlowpicConfig::with_resolution(8);
        let a = Flowpic::build(&[Pkt::data(0.0, 100, Direction::Downstream)], &cfg);
        let b = Flowpic::build(&[Pkt::data(10.0, 1400, Direction::Downstream)], &cfg);
        assert_eq!(shift_distance(&a, &a), 0.0);
        assert!(shift_distance(&a, &b) > 0.5);
    }
}
