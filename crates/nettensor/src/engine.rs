//! Deterministic data-parallel batch execution.
//!
//! [`BatchEngine`] shards a mini-batch along the sample axis and runs the
//! forward/backward passes of each shard on a scoped thread pool — the
//! model itself is shared immutably (`Sequential: Sync`), while all
//! per-call activation state lives in a private [`Tape`] per shard and
//! gradients accumulate into a private [`GradStore`] per shard.
//!
//! # Determinism contract
//!
//! Changing the worker count must never change a single bit of any
//! result. Two mechanisms guarantee that:
//!
//! 1. **Fixed shard boundaries.** The batch is split into chunks of
//!    `shard_size` samples (default [`DEFAULT_SHARD_SIZE`]) regardless of
//!    how many workers exist. Workers only decide *who* computes a shard,
//!    never *what* a shard is.
//! 2. **Ordered reduction.** Per-shard gradient stores are summed
//!    strictly in shard order (shard 0 + shard 1 + …) on the calling
//!    thread after all workers join, so the f32 summation order — and
//!    with it every loss, metric, and trained weight — is bit-identical
//!    for 1, 2, or 8 workers. The same ordering applies to
//!    [`BatchEngine::commit`], which replays deferred parameter-adjacent
//!    state updates (batch-norm running statistics) in shard order.
//!
//! Stochastic layers stay deterministic because [`Tape::with_context`]
//! carries the global row offset of each shard: dropout derives its mask
//! by hashing `(salt, global sample row, element)`, so a sample's mask
//! does not depend on which shard — or worker — processed it.
//!
//! Note the engine does *not* claim sharded results equal **unsharded**
//! ones: summing per-shard gradients groups the f32 additions differently
//! than one whole-batch accumulation. The contract is "same shards ⇒ same
//! bits"; pick a `shard_size` and results are reproducible everywhere.
//!
//! Networks whose forward couples samples across the batch (batch norm)
//! must not be sharded — shard-local batch statistics would change the
//! math, not just the rounding. [`BatchEngine::forward`] enforces this:
//! training a [`Sequential::batch_coupled`] model across more than one
//! shard panics with a pointer at [`BatchEngine::unsharded`] (what the
//! BYOL trainer, the only batch-norm user here, runs on). Evaluation mode
//! shards freely — it standardizes per sample with running statistics.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::model::Sequential;
use crate::tape::{GradStore, Tape};
use crate::tensor::Tensor;

/// Samples per shard. Small enough that a batch of 32 yields 8 shards
/// (work for up to 8 workers), large enough that per-shard overhead
/// (thread dispatch, tape allocation) stays negligible.
pub const DEFAULT_SHARD_SIZE: usize = 4;

/// A data-parallel forward/backward executor over a [`Sequential`] model.
///
/// The engine keeps a running count of samples forwarded through it
/// ([`BatchEngine::samples_processed`]) for throughput telemetry; clones
/// share the counter. The count is observability-only — it never enters
/// any computation, checkpoint or fingerprint.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    workers: usize,
    shard_size: usize,
    samples: Arc<AtomicU64>,
}

impl BatchEngine {
    /// Creates an engine with the given worker count and the default
    /// shard size. `workers == 0` resolves to the machine's available
    /// parallelism (like the campaign runner).
    pub fn new(workers: usize) -> BatchEngine {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        BatchEngine {
            workers,
            shard_size: DEFAULT_SHARD_SIZE,
            samples: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an engine with an explicit shard size. The shard size — not
    /// the worker count — defines the f32 accumulation grouping, so runs
    /// that must be bit-comparable need the same shard size.
    pub fn with_shard_size(workers: usize, shard_size: usize) -> BatchEngine {
        assert!(shard_size >= 1, "shard size must be at least 1");
        BatchEngine {
            workers: BatchEngine::new(workers).workers,
            shard_size,
            samples: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A single-threaded engine that treats the whole batch as one shard
    /// — exact whole-batch semantics, required for batch-norm networks.
    pub fn unsharded() -> BatchEngine {
        BatchEngine {
            workers: 1,
            shard_size: usize::MAX,
            samples: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total samples forwarded through this engine (training and
    /// evaluation passes alike) since construction. Trainers snapshot
    /// this around an epoch's batch loop to report per-epoch throughput;
    /// clones of an engine share the counter.
    pub fn samples_processed(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// The fixed shard boundaries for a batch of `n` samples.
    fn shard_ranges(&self, n: usize) -> Vec<Range<usize>> {
        let step = self.shard_size.min(n.max(1));
        (0..n)
            .step_by(step)
            .map(|start| start..(start + step).min(n))
            .collect()
    }

    /// Runs the forward pass, sharded. Returns the concatenated output
    /// (row order preserved) and one tape per shard, in shard order.
    /// `salt` seeds stochastic layers (dropout) for this step; pass a
    /// per-step counter so masks differ between steps but not workers.
    pub fn forward(
        &self,
        model: &Sequential,
        input: &Tensor,
        train: bool,
        salt: u64,
    ) -> (Tensor, Vec<Tape>) {
        let n = input.batch();
        assert!(n >= 1, "BatchEngine::forward on an empty batch");
        self.samples.fetch_add(n as u64, Ordering::Relaxed);
        let ranges = self.shard_ranges(n);
        // Training a batch-coupled model (batch norm) across shards would
        // compute shard-local batch statistics — silently different math,
        // not just different rounding. Refuse loudly. Evaluation mode is
        // fine: it standardizes per sample with running statistics.
        assert!(
            !(train && ranges.len() > 1 && model.batch_coupled()),
            "cannot train a batch-coupled model (contains BatchNorm) on a \
             sharded BatchEngine: shard-local batch statistics would change \
             the result; use BatchEngine::unsharded()"
        );
        let shards = self.run_shards(&ranges, |range| {
            let mut tape = Tape::with_context(salt, range.start);
            let out = model.forward(&input.rows(range.start, range.end), train, &mut tape);
            (out, tape)
        });
        let (outputs, tapes): (Vec<Tensor>, Vec<Tape>) = shards.into_iter().unzip();
        (concat_rows(&outputs), tapes)
    }

    /// Sharded, tape-free inference: each shard runs
    /// [`Sequential::predict`] on a worker, outputs reassembled in shard
    /// order. Eval-mode math is per-sample, so the result is bit-identical
    /// to an unsharded `model.predict(input)` at any worker count or shard
    /// size — the property the serving engine's batch-size-invariance
    /// tests pin down. This holds for the approximate eval lanes too:
    /// the int8 lane's activation scales are per-*sample* (never
    /// per-batch), so sharding cannot change which scale a sample sees.
    pub fn predict(&self, model: &Sequential, input: &Tensor) -> Tensor {
        let n = input.batch();
        assert!(n >= 1, "BatchEngine::predict on an empty batch");
        self.samples.fetch_add(n as u64, Ordering::Relaxed);
        let ranges = self.shard_ranges(n);
        let outputs = self.run_shards(&ranges, |range| {
            model.predict(&input.rows(range.start, range.end))
        });
        concat_rows(&outputs)
    }

    /// Runs the backward pass over the tapes produced by
    /// [`BatchEngine::forward`], slicing `grad_out` per shard. Per-shard
    /// gradients are reduced into `grads` **in shard order**; the
    /// concatenated input gradient is returned.
    pub fn backward(
        &self,
        model: &Sequential,
        tapes: &[Tape],
        grad_out: &Tensor,
        grads: &mut GradStore,
    ) -> Tensor {
        let n = grad_out.batch();
        let ranges = self.shard_ranges(n);
        assert_eq!(
            ranges.len(),
            tapes.len(),
            "tape count does not match the gradient batch"
        );
        let shards = self.run_shards(&ranges, |range| {
            // Shard index recovered from the fixed boundaries.
            let idx = range.start / self.shard_size.min(n.max(1));
            let mut local = model.grad_store();
            let g_in = model.backward(
                &tapes[idx],
                &grad_out.rows(range.start, range.end),
                &mut local,
            );
            (g_in, local)
        });
        let mut input_grads = Vec::with_capacity(shards.len());
        for (g_in, local) in shards {
            grads.add_assign(&local); // strictly shard 0, 1, 2, … — the ordered reduce
            input_grads.push(g_in);
        }
        concat_rows(&input_grads)
    }

    /// Applies deferred layer-state updates (batch-norm running stats)
    /// from every tape, in shard order, on the calling thread.
    pub fn commit(&self, model: &mut Sequential, tapes: &[Tape]) {
        for tape in tapes {
            model.commit(tape);
        }
    }

    /// Executes `work` for every shard range, returning results in shard
    /// order. With one worker (or one shard) this runs inline on the
    /// calling thread; otherwise worker `t` statically processes shards
    /// `t, t + w, t + 2w, …` on a scoped thread and results are
    /// reassembled by index — no locks, no work stealing, no
    /// scheduling-dependent ordering anywhere.
    fn run_shards<T, F>(&self, ranges: &[Range<usize>], work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Range<usize>) -> T + Sync,
    {
        let w = self.workers.min(ranges.len());
        if w <= 1 {
            return ranges.iter().map(&work).collect();
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(ranges.len());
        results.resize_with(ranges.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..w)
                .map(|t| {
                    let work = &work;
                    scope.spawn(move || {
                        ranges
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(w)
                            .map(|(idx, range)| (idx, work(range)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (idx, value) in handle.join().expect("batch worker panicked") {
                    results[idx] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("shard not computed"))
            .collect()
    }
}

/// Concatenates tensors along the first dimension (shard order).
fn concat_rows(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "nothing to concatenate");
    let tail = &parts[0].shape[1..];
    let n: usize = parts.iter().map(Tensor::batch).sum();
    let mut shape = vec![n];
    shape.extend_from_slice(tail);
    let mut data = Vec::with_capacity(shape.iter().product());
    for part in parts {
        assert_eq!(&part.shape[1..], tail, "shard output shapes disagree");
        data.extend_from_slice(&part.data);
    }
    Tensor::new(&shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm1d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU};
    use crate::loss::cross_entropy;

    fn tiny_net(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, seed)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten),
            Box::new(Dropout::new(0.3, seed)),
            Box::new(Linear::new(2 * 3 * 3, 4, seed + 1)),
        ])
    }

    fn batch(n: usize, seed: u64) -> Tensor {
        Tensor::kaiming_uniform(&[n, 1, 8, 8], 1, seed)
    }

    fn step(engine: &BatchEngine, net: &Sequential, x: &Tensor, salt: u64) -> (Tensor, GradStore) {
        let (logits, tapes) = engine.forward(net, x, true, salt);
        let labels: Vec<usize> = (0..x.batch()).map(|i| i % 4).collect();
        let (_, grad) = cross_entropy(&logits, &labels);
        let mut grads = net.grad_store();
        engine.backward(net, &tapes, &grad, &mut grads);
        (logits, grads)
    }

    #[test]
    fn forward_matches_direct_sequential_eval() {
        let net = tiny_net(3);
        let x = batch(10, 9);
        let (out, tapes) = BatchEngine::new(2).forward(&net, &x, false, 0);
        assert_eq!(tapes.len(), 3); // ceil(10 / 4) shards
        assert_eq!(
            out.data,
            net.infer(&x).data,
            "sharded eval must be bitwise identical"
        );
    }

    #[test]
    fn predict_is_shard_and_worker_invariant() {
        let net = tiny_net(4);
        let x = batch(13, 17);
        let direct = net.predict(&x);
        assert_eq!(direct.data, net.infer(&x).data, "predict == infer bits");
        for engine in [
            BatchEngine::new(1),
            BatchEngine::new(4),
            BatchEngine::with_shard_size(2, 1),
            BatchEngine::with_shard_size(3, 7),
            BatchEngine::unsharded(),
        ] {
            assert_eq!(engine.predict(&net, &x).data, direct.data);
        }
    }

    #[test]
    fn results_are_bitwise_identical_across_worker_counts() {
        let net = tiny_net(5);
        let x = batch(13, 11); // deliberately not a multiple of the shard size
        let (out1, grads1) = step(&BatchEngine::new(1), &net, &x, 42);
        for workers in [2, 3, 8] {
            let (out, grads) = step(&BatchEngine::new(workers), &net, &x, 42);
            assert_eq!(out.data, out1.data, "output differs at {workers} workers");
            for (a, b) in grads.slots().iter().zip(grads1.slots()) {
                assert_eq!(a.data, b.data, "gradients differ at {workers} workers");
            }
        }
    }

    #[test]
    fn dropout_mask_is_shard_invariant() {
        // Same salt, different shard sizes ⇒ dropout still masks each
        // *global* row identically (outputs equal row-by-row even though
        // gradient grouping differs).
        let net = tiny_net(7);
        let x = batch(8, 13);
        let (a, _) = BatchEngine::with_shard_size(1, 2).forward(&net, &x, true, 5);
        let (b, _) = BatchEngine::with_shard_size(4, 8).forward(&net, &x, true, 5);
        assert_eq!(a.data, b.data);
        // Different salt ⇒ different masks.
        let (c, _) = BatchEngine::with_shard_size(1, 2).forward(&net, &x, true, 6);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn input_gradient_rows_are_reassembled_in_order() {
        let net = tiny_net(1);
        let x = batch(6, 3);
        let engine = BatchEngine::new(4);
        let (logits, tapes) = engine.forward(&net, &x, true, 0);
        let labels = vec![0usize; 6];
        let (_, grad) = cross_entropy(&logits, &labels);
        let mut grads = net.grad_store();
        let g_in = engine.backward(&net, &tapes, &grad, &mut grads);
        assert_eq!(g_in.shape, x.shape);
        // Row k of the sharded output must come from sample k alone:
        // an offset-matched single-sample forward reproduces it exactly.
        let mut tape = Tape::with_context(0, 2);
        let solo = net.forward(&x.rows(2, 3), true, &mut tape);
        assert_eq!(logits.rows(2, 3).data, solo.data);
    }

    #[test]
    fn unsharded_commit_updates_batchnorm_running_stats() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(3, 3, 1)),
            Box::new(BatchNorm1d::new(3)),
        ]);
        let x = Tensor::kaiming_uniform(&[6, 3], 1, 2);
        let engine = BatchEngine::unsharded();
        let (_, tapes) = engine.forward(&net, &x, true, 0);
        assert_eq!(
            tapes.len(),
            1,
            "unsharded engine must produce exactly one shard"
        );
        let eval_before = net.infer(&x);
        engine.commit(&mut net, &tapes);
        let eval_after = net.infer(&x);
        assert_ne!(
            eval_before.data, eval_after.data,
            "commit must move running stats"
        );
    }

    #[test]
    fn sample_counter_tracks_forwards_and_is_shared_by_clones() {
        let net = tiny_net(2);
        let engine = BatchEngine::new(2);
        assert_eq!(engine.samples_processed(), 0);
        engine.forward(&net, &batch(10, 1), true, 0);
        assert_eq!(engine.samples_processed(), 10);
        // Eval forwards count too, and clones share the counter.
        let clone = engine.clone();
        clone.forward(&net, &batch(3, 2), false, 0);
        assert_eq!(engine.samples_processed(), 13);
    }

    #[test]
    fn shard_ranges_are_worker_independent() {
        let a = BatchEngine::new(1);
        let b = BatchEngine::new(8);
        assert_eq!(a.shard_ranges(13), b.shard_ranges(13));
        assert_eq!(a.shard_ranges(13).len(), 4);
        assert_eq!(BatchEngine::unsharded().shard_ranges(13).len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn forward_rejects_empty_batch() {
        let net = tiny_net(0);
        BatchEngine::new(1).forward(&net, &Tensor::zeros(&[0, 1, 8, 8]), true, 0);
    }

    fn bn_net() -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(3, 3, 1)),
            Box::new(BatchNorm1d::new(3)),
        ])
    }

    #[test]
    #[should_panic(expected = "batch-coupled")]
    fn sharded_training_of_batchnorm_model_is_rejected() {
        let net = bn_net();
        let x = Tensor::kaiming_uniform(&[6, 3], 1, 2);
        BatchEngine::with_shard_size(1, 2).forward(&net, &x, true, 0);
    }

    #[test]
    fn batchnorm_model_still_trains_when_single_shard_and_evals_sharded() {
        let net = bn_net();
        let x = Tensor::kaiming_uniform(&[6, 3], 1, 2);
        // One shard covering the batch: exact whole-batch semantics, OK.
        BatchEngine::unsharded().forward(&net, &x, true, 0);
        // Evaluation uses running statistics per sample — sharding is
        // harmless and must keep working.
        let (sharded, _) = BatchEngine::with_shard_size(2, 2).forward(&net, &x, false, 0);
        assert_eq!(sharded.data, net.infer(&x).data);
    }
}
