//! im2col lowering, cache-blocked GEMM microkernels and int8
//! quantization primitives — the dense-regime fast path behind
//! [`crate::layers::Conv2d`]'s opt-in GEMM dispatch and the serving
//! int8 eval lane.
//!
//! The sparse kernels of `crate::sparse` win when a flowpic is almost
//! all zeros; at and above the sparsity threshold the direct dense
//! loops are the fallback, and their access pattern (stride-`s` input
//! reads per weight tap) is what these kernels replace: lower each
//! sample to a row-major *patches* matrix `[OH·OW, C·K·K]` once
//! ([`im2col`]), then run the convolution as a blocked matrix multiply
//! with contiguous, unrollable inner products.
//!
//! ## Accumulation-order contract
//!
//! Unlike the sparse kernels, the GEMM kernels do **not** reproduce the
//! direct loops' accumulation order: [`gemm_nt`] splits each dot
//! product across four partial accumulators and [`gemm_nn_acc`] sums in
//! `k`-major order, so results agree with the direct loops only to
//! floating-point tolerance. That is why `Conv2d` keeps GEMM behind an
//! explicit opt-in (`Layer::set_gemm`) and the default training tape
//! and eval path stay on the order-identical kernels (see DESIGN.md
//! §2i).

/// Lowers one `[C, H, W]` sample to its im2col patches matrix.
///
/// Row `p = oi·OW + oj` of the output holds the receptive field of
/// output position `(oi, oj)`, laid out `[C, K, K]` row-major — so with
/// the weight tensor viewed as `[OC, C·K·K]`, output `(oc, p)` is the
/// dot product of weight row `oc` and patch row `p`. `out` is cleared
/// and refilled (capacity is reused across samples).
pub fn im2col(
    input: &[f32],
    (c, h, w): (usize, usize, usize),
    k: usize,
    stride: usize,
    (oh, ow): (usize, usize),
    out: &mut Vec<f32>,
) {
    assert_eq!(input.len(), c * h * w, "sample length mismatch");
    out.clear();
    out.reserve(oh * ow * c * k * k);
    for oi in 0..oh {
        for oj in 0..ow {
            for ic in 0..c {
                for ki in 0..k {
                    let base = (ic * h + oi * stride + ki) * w + oj * stride;
                    out.extend_from_slice(&input[base..base + k]);
                }
            }
        }
    }
}

/// [`im2col`] over an int8 sample (the quantized eval lane shares the
/// lowering).
pub fn im2col_i8(
    input: &[i8],
    (c, h, w): (usize, usize, usize),
    k: usize,
    stride: usize,
    (oh, ow): (usize, usize),
    out: &mut Vec<i8>,
) {
    assert_eq!(input.len(), c * h * w, "sample length mismatch");
    out.clear();
    out.reserve(oh * ow * c * k * k);
    for oi in 0..oh {
        for oj in 0..ow {
            for ic in 0..c {
                for ki in 0..k {
                    let base = (ic * h + oi * stride + ki) * w + oj * stride;
                    out.extend_from_slice(&input[base..base + k]);
                }
            }
        }
    }
}

/// Scatter-adds an im2col-shaped gradient back onto a `[C, H, W]`
/// sample gradient — the adjoint of [`im2col`]. Cells read by several
/// patches accumulate each patch's contribution.
pub fn col2im_add(
    col: &[f32],
    (c, h, w): (usize, usize, usize),
    k: usize,
    stride: usize,
    (oh, ow): (usize, usize),
    grad: &mut [f32],
) {
    assert_eq!(grad.len(), c * h * w, "sample length mismatch");
    assert_eq!(col.len(), oh * ow * c * k * k, "col length mismatch");
    let mut p = 0usize;
    for oi in 0..oh {
        for oj in 0..ow {
            for ic in 0..c {
                for ki in 0..k {
                    let base = (ic * h + oi * stride + ki) * w + oj * stride;
                    for kj in 0..k {
                        grad[base + kj] += col[p];
                        p += 1;
                    }
                }
            }
        }
    }
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` — both operands row-major with the
/// shared dimension contiguous, so every output is a straight dot
/// product of two cache-resident rows. Blocked over `b`'s rows (keeps a
/// tile of patch rows hot in L1 while every weight row visits it) with
/// a 4-way unrolled inner product.
pub fn gemm_nt(a: &[f32], b: &[f32], m: usize, kdim: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * kdim, "A shape mismatch");
    assert_eq!(b.len(), n * kdim, "B shape mismatch");
    assert_eq!(out.len(), m * n, "C shape mismatch");
    const NB: usize = 64;
    for jb in (0..n).step_by(NB) {
        let jend = (jb + NB).min(n);
        for i in 0..m {
            let ar = &a[i * kdim..(i + 1) * kdim];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in jb..jend {
                let br = &b[j * kdim..(j + 1) * kdim];
                orow[j] = dot_f32(ar, br);
            }
        }
    }
}

/// 4-accumulator dot product (the register tile of [`gemm_nt`]).
/// Reorders the sum relative to a sequential loop — part of the GEMM
/// lane's tolerance (not bit-identity) contract.
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let n4 = a.len() / 4 * 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0f32, 0f32, 0f32, 0f32);
    let mut i = 0;
    while i < n4 {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0f32;
    for j in n4..a.len() {
        tail += a[j] * b[j];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// `C[m,n] += A[m,k] · B[k,n]` — accumulating, row-major. The `ikj`
/// loop order broadcasts one `A` scalar across a contiguous `B` row and
/// a contiguous `C` row (vectorizable axpy), with the shared dimension
/// blocked so a `B` tile stays cache-resident across `A` rows.
pub fn gemm_nn_acc(a: &[f32], b: &[f32], m: usize, kdim: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * kdim, "A shape mismatch");
    assert_eq!(b.len(), kdim * n, "B shape mismatch");
    assert_eq!(out.len(), m * n, "C shape mismatch");
    const KB: usize = 128;
    for kb in (0..kdim).step_by(KB) {
        let kend = (kb + KB).min(kdim);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in kb..kend {
                let av = a[i * kdim + kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Row-major transpose: `[rows, cols]` in, `[cols, rows]` out.
pub fn transpose(a: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(a.len(), rows * cols, "shape mismatch");
    let mut out = vec![0f32; a.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
    out
}

/// Largest absolute value in `data` (0.0 for an empty or all-zero
/// slice; NaNs are ignored so a poisoned activation cannot poison the
/// scale).
pub fn max_abs(data: &[f32]) -> f32 {
    let mut m = 0f32;
    for &v in data {
        let a = v.abs();
        if a > m {
            m = a;
        }
    }
    m
}

/// Symmetric int8 quantization: `q = round(v / scale)` clamped to
/// `[-127, 127]`. A zero (or non-finite) scale maps everything to 0 —
/// the caller's dequantize step multiplies by the same scale, so an
/// all-zero tensor round-trips exactly.
pub fn quantize_i8(data: &[f32], scale: f32, out: &mut Vec<i8>) {
    out.clear();
    out.reserve(data.len());
    if scale == 0.0 || !scale.is_finite() {
        out.resize(data.len(), 0);
        return;
    }
    let inv = 1.0 / scale;
    for &v in data {
        let q = (v * inv).round();
        // NaN → 0, ±inf saturate: `as` casts on floats clamp.
        out.push(q.clamp(-127.0, 127.0) as i8);
    }
}

/// Int32-accumulated int8 dot product — the quantized lane's microkernel.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// Per-output-channel symmetrically quantized weights: row `r` of a
/// `[rows, row_len]` row-major weight view is quantized against its own
/// scale `max|w[r,·]| / 127`. Computed once at serving-model load and
/// reused for every batch.
#[derive(Debug, Clone)]
pub struct Int8Weights {
    /// Quantized weights, same `[rows, row_len]` row-major layout.
    pub q: Vec<i8>,
    /// Per-row dequantization scale (`q * scale ≈ w`).
    pub scale: Vec<f32>,
    /// Row length (the reduction dimension).
    pub row_len: usize,
}

impl Int8Weights {
    /// Quantizes `w` viewed as `[rows, row_len]` row-major, one scale
    /// per row.
    pub fn per_channel(w: &[f32], rows: usize) -> Int8Weights {
        assert!(
            rows > 0 && w.len().is_multiple_of(rows),
            "ragged weight view"
        );
        let row_len = w.len() / rows;
        let mut q = Vec::with_capacity(w.len());
        let mut scale = Vec::with_capacity(rows);
        let mut row_q = Vec::new();
        for r in 0..rows {
            let row = &w[r * row_len..(r + 1) * row_len];
            let s = max_abs(row) / 127.0;
            quantize_i8(row, s, &mut row_q);
            q.extend_from_slice(&row_q);
            scale.push(s);
        }
        Int8Weights { q, scale, row_len }
    }

    /// Quantized row `r`.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.q[r * self.row_len..(r + 1) * self.row_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn randf(seed: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (splitmix64(seed.wrapping_add(i as u64)) % 2000) as f32 / 1000.0 - 1.0)
            .collect()
    }

    #[test]
    fn im2col_known_2x2_kernel() {
        // 1×3×3 sample, k=2, stride 1 → 4 patches of 4.
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut col = Vec::new();
        im2col(&x, (1, 3, 3), 2, 1, (2, 2), &mut col);
        assert_eq!(
            col,
            vec![
                1.0, 2.0, 4.0, 5.0, // (0,0)
                2.0, 3.0, 5.0, 6.0, // (0,1)
                4.0, 5.0, 7.0, 8.0, // (1,0)
                5.0, 6.0, 8.0, 9.0, // (1,1)
            ]
        );
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the
        // defining property the GEMM backward relies on.
        let dims = (2usize, 5usize, 4usize);
        let (k, s, ohw) = (2usize, 1usize, (4usize, 3usize));
        let x = randf(3, dims.0 * dims.1 * dims.2);
        let mut col = Vec::new();
        im2col(&x, dims, k, s, ohw, &mut col);
        let y = randf(4, col.len());
        let lhs: f64 = col.iter().zip(&y).map(|(&a, &b)| (a * b) as f64).sum();
        let mut back = vec![0f32; x.len()];
        col2im_add(&y, dims, k, s, ohw, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn gemm_nt_matches_naive_within_tolerance() {
        let (m, kdim, n) = (3usize, 37usize, 70usize);
        let a = randf(1, m * kdim);
        let b = randf(2, n * kdim);
        let mut c = vec![0f32; m * n];
        gemm_nt(&a, &b, m, kdim, n, &mut c);
        for i in 0..m {
            for j in 0..n {
                let naive: f32 = (0..kdim).map(|p| a[i * kdim + p] * b[j * kdim + p]).sum();
                assert!(
                    (c[i * n + j] - naive).abs() <= 1e-4 * (1.0 + naive.abs()),
                    "({i},{j}): {} vs {naive}",
                    c[i * n + j]
                );
            }
        }
    }

    #[test]
    fn gemm_nn_acc_matches_naive_and_accumulates() {
        let (m, kdim, n) = (4usize, 150usize, 23usize);
        let a = randf(5, m * kdim);
        let b = randf(6, kdim * n);
        let mut c = vec![1.0f32; m * n];
        gemm_nn_acc(&a, &b, m, kdim, n, &mut c);
        for i in 0..m {
            for j in 0..n {
                let naive: f32 = (0..kdim).map(|p| a[i * kdim + p] * b[p * n + j]).sum();
                assert!(
                    (c[i * n + j] - (1.0 + naive)).abs() <= 1e-3 * (1.0 + naive.abs()),
                    "({i},{j}): {} vs {}",
                    c[i * n + j],
                    1.0 + naive
                );
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let a = randf(9, 6 * 4);
        let t = transpose(&a, 6, 4);
        assert_eq!(transpose(&t, 4, 6), a);
        assert_eq!(t[2 * 6 + 3], a[3 * 4 + 2]);
    }

    #[test]
    fn quantize_round_trips_within_half_step() {
        let data = randf(11, 257);
        let scale = max_abs(&data) / 127.0;
        let mut q = Vec::new();
        quantize_i8(&data, scale, &mut q);
        for (&v, &qq) in data.iter().zip(&q) {
            assert!((qq as f32 * scale - v).abs() <= 0.5 * scale + 1e-7);
        }
        // Zero scale (all-zero tensor) round-trips exactly.
        quantize_i8(&[0.0; 4], 0.0, &mut q);
        assert_eq!(q, vec![0i8; 4]);
        // Non-finite values cannot escape the clamp.
        quantize_i8(&[f32::NAN, f32::INFINITY, -f32::INFINITY], 1.0, &mut q);
        assert_eq!(q, vec![0i8, 127, -127]);
    }

    #[test]
    fn per_channel_scales_are_independent() {
        // Row 0 spans ±1, row 1 spans ±100: one shared scale would
        // crush row 0 to ±1 step; per-channel keeps both at full range.
        let w = vec![1.0, -0.5, 0.25, -1.0, 100.0, -50.0, 25.0, -100.0];
        let iw = Int8Weights::per_channel(&w, 2);
        assert_eq!(iw.row_len, 4);
        assert_eq!(iw.row(0), &[127, -64, 32, -127]);
        assert_eq!(iw.row(1), &[127, -64, 32, -127]);
        assert!((iw.scale[0] - 1.0 / 127.0).abs() < 1e-9);
        assert!((iw.scale[1] - 100.0 / 127.0).abs() < 1e-6);
    }

    #[test]
    fn dot_i8_accumulates_in_i32() {
        let a = vec![127i8; 300];
        let b = vec![127i8; 300];
        // 300 · 127² = 4 838 700 — would overflow i16 arithmetic.
        assert_eq!(dot_i8(&a, &b), 300 * 127 * 127);
    }
}
