//! Sparsity analysis and CSR-style indexing for the kernel fast paths.
//!
//! The paper's flowpic inputs are histograms of packet arrivals: a 32×32
//! mini-flowpic holds at most a few hundred non-zero cells and the
//! original 1500×1500 full-resolution flowpic is >99.9 % zeros. The
//! convolution and pooling layers exploit this by building a [`CsrIndex`]
//! of the non-zero cells once per call and iterating only those — but
//! only when a cheap density probe ([`analyze`]) says the tensor is
//! sparse enough to win; deeper layers' post-ReLU activations are dense
//! and stay on the dense loops.
//!
//! ## Bit-identity contract
//!
//! The sparse kernels in [`crate::layers`] are required to produce
//! **bit-identical** outputs to their dense counterparts. The argument:
//!
//! * every accumulator's surviving addends are visited in exactly the
//!   dense loop order (the index stores columns in ascending order, and
//!   the sparse loops nest so that each accumulator sees its addends in
//!   the same sequence the dense loops produce);
//! * the only addends dropped are products with an exactly-zero operand,
//!   i.e. values that are `±0.0`. Adding `±0.0` to an IEEE-754
//!   accumulator is the identity unless the accumulator is exactly
//!   `-0.0` (where `-0.0 + 0.0 == +0.0`). A running sum that starts at
//!   `+0.0` can never reach `-0.0`: exact cancellation rounds to `+0.0`,
//!   sums near zero are exact (no underflow to `-0.0`), and
//!   `+0.0 + -0.0 == +0.0`. The one reachable corner is a bias tensor
//!   hand-set to `-0.0` (Kaiming init never produces it), which is
//!   accepted and documented in DESIGN.md §2f.

/// Density below which the sparse kernels dispatch. Conservative: the
/// measured break-even on the single-core container is ~0.6 for the
/// full-flowpic first layer and higher for the mini architecture, so
/// 0.25 only engages the sparse path where it clearly wins (flowpic
/// inputs sit below 0.05). Layers expose
/// [`crate::layers::Layer::set_sparsity_threshold`] to override it —
/// `0.0` forces dense, `1.1` forces sparse (density is ≤ 1).
pub const DEFAULT_SPARSITY_THRESHOLD: f32 = 0.25;

/// Resolves a sparsity threshold that forces one path regardless of the
/// tensor's actual density, so dispatch sites can skip the O(len)
/// [`analyze`] probe entirely: `Some(true)` forces sparse, `Some(false)`
/// forces dense, `None` means the density genuinely decides and a probe
/// is required.
///
/// The mapping mirrors what `density() < threshold` already does at
/// every dispatch site, so skipping the probe can never change which
/// kernel runs:
///
/// * `threshold > 1.0` — every density (≤ 1.0) compares below it:
///   forced sparse (the documented `1.1` sentinel);
/// * `threshold <= 0.0` — no density compares below it: forced dense
///   (the documented `0.0` sentinel);
/// * NaN — `density() < NaN` is always false: forced dense. Callers
///   that can reject NaN at their boundary should (the daemon and CLI
///   do); this keeps the library total for ones that don't;
/// * anything in `(0.0, 1.0]` — a probe is needed (exactly `1.0` still
///   probes: an all-nonzero tensor has density 1.0, which is not `< 1.0`).
pub fn forced_path(threshold: f32) -> Option<bool> {
    if threshold > 1.0 {
        Some(true)
    } else if threshold <= 0.0 || threshold.is_nan() {
        Some(false)
    } else {
        None
    }
}

/// What one pass over a tensor's data learned about its sparsity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Values not exactly equal to zero (`v != 0.0`, so `-0.0` counts as
    /// a zero).
    pub nnz: usize,
    /// Total values scanned.
    pub len: usize,
    /// Every value has a clear sign bit and is not NaN — i.e. the tensor
    /// is made of `+0.0` and positive reals. Pooling's sparse eval path
    /// requires this (a scatter-max over positives is order-independent
    /// and bottoms out at the `+0.0` a zero-filled output already holds).
    pub all_sign_positive: bool,
}

impl SparsityStats {
    /// Fraction of non-zero cells, in `[0, 1]`. An empty tensor is fully
    /// dense (density 1.0) so it never takes a sparse path.
    pub fn density(&self) -> f32 {
        if self.len == 0 {
            1.0
        } else {
            self.nnz as f32 / self.len as f32
        }
    }
}

/// Single cheap pass over `data`: non-zero count plus the positivity
/// flag. O(len) with no allocation — the probe the dispatch decisions
/// are built on.
pub fn analyze(data: &[f32]) -> SparsityStats {
    let mut nnz = 0usize;
    let mut all_sign_positive = true;
    for &v in data {
        if v != 0.0 {
            nnz += 1;
        }
        if !v.is_sign_positive() || v.is_nan() {
            all_sign_positive = false;
        }
    }
    SparsityStats {
        nnz,
        len: data.len(),
        all_sign_positive,
    }
}

/// CSR-style index of the non-zero cells of a row-major buffer viewed as
/// `rows × row_len` — for an `[N, C, H, W]` tensor with `row_len = W`
/// that is one index row per image row of every `[n, c]` plane.
///
/// Entry `e` of flat row `r` lives at `cols[e] ∈ [row_ptr[r], row_ptr[r+1])`
/// with value `vals[e]`; columns are stored in ascending order (the scan
/// order of the build), which is what lets the sparse kernels replay
/// dense accumulation order and early-`break` once a column maps past
/// the output width.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrIndex {
    /// Width of each row (`W` for image tensors).
    pub row_len: usize,
    /// `rows + 1` offsets into `cols`/`vals`.
    pub row_ptr: Vec<usize>,
    /// Column of each stored cell, ascending within a row.
    pub cols: Vec<u32>,
    /// Value of each stored cell (never exactly `0.0`).
    pub vals: Vec<f32>,
}

impl CsrIndex {
    /// Indexes every cell of `data` with `v != 0.0`. `data.len()` must
    /// be a multiple of `row_len`.
    pub fn build(data: &[f32], row_len: usize) -> CsrIndex {
        assert!(row_len > 0, "CSR row length must be positive");
        assert_eq!(
            data.len() % row_len,
            0,
            "data length {} not a multiple of row length {row_len}",
            data.len()
        );
        let rows = data.len() / row_len;
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            let row = &data[r * row_len..(r + 1) * row_len];
            for (col, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    cols.push(col as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(cols.len());
        }
        CsrIndex {
            row_len,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Number of indexed rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Stored (non-zero) cells.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The stored cells of flat row `r` as parallel `(columns, values)`
    /// slices, columns ascending.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_counts_nonzeros_and_positivity() {
        let s = analyze(&[0.0, 1.5, 0.0, 2.0]);
        assert_eq!(s.nnz, 2);
        assert_eq!(s.len, 4);
        assert!(s.all_sign_positive);
        assert_eq!(s.density(), 0.5);

        assert!(!analyze(&[0.0, -1.0]).all_sign_positive);
        assert!(!analyze(&[-0.0]).all_sign_positive, "-0.0 has a sign bit");
        assert!(!analyze(&[f32::NAN]).all_sign_positive);
        // -0.0 compares equal to zero, so it is not a stored cell…
        assert_eq!(analyze(&[-0.0]).nnz, 0);
        // …and an empty tensor reports fully dense.
        assert_eq!(analyze(&[]).density(), 1.0);
    }

    #[test]
    fn forced_path_matches_the_dispatch_comparison() {
        // Sentinels resolve without a probe…
        assert_eq!(forced_path(1.1), Some(true));
        assert_eq!(forced_path(2.0), Some(true));
        assert_eq!(forced_path(0.0), Some(false));
        assert_eq!(forced_path(-0.5), Some(false));
        assert_eq!(forced_path(f32::NEG_INFINITY), Some(false));
        // …NaN forces dense (density() < NaN is false)…
        assert_eq!(forced_path(f32::NAN), Some(false));
        // …and genuine thresholds, including exactly 1.0, still probe.
        assert_eq!(forced_path(DEFAULT_SPARSITY_THRESHOLD), None);
        assert_eq!(forced_path(1.0), None);
        assert_eq!(forced_path(f32::MIN_POSITIVE), None);

        // Exhaustive agreement with `density() < t` over sample densities.
        for t in [-1.0, 0.0, 0.1, 0.25, 0.5, 1.0, 1.1, f32::NAN] {
            if let Some(sparse) = forced_path(t) {
                for density in [0.0f32, 0.3, 1.0] {
                    assert_eq!(density < t, sparse, "t={t} density={density}");
                }
            }
        }
    }

    #[test]
    fn csr_round_trips_a_known_matrix() {
        // 2 rows × 4 cols:
        //   [0, 3, 0, 5]
        //   [7, 0, 0, 0]
        let data = [0.0, 3.0, 0.0, 5.0, 7.0, 0.0, 0.0, 0.0];
        let idx = CsrIndex::build(&data, 4);
        assert_eq!(idx.rows(), 2);
        assert_eq!(idx.nnz(), 3);
        assert_eq!(idx.row_ptr, vec![0, 2, 3]);
        assert_eq!(idx.row(0), (&[1u32, 3][..], &[3.0f32, 5.0][..]));
        assert_eq!(idx.row(1), (&[0u32][..], &[7.0f32][..]));
    }

    #[test]
    fn csr_skips_negative_zero_and_keeps_negatives() {
        let data = [-0.0, -2.0, 0.0];
        let idx = CsrIndex::build(&data, 3);
        assert_eq!(idx.nnz(), 1);
        assert_eq!(idx.row(0), (&[1u32][..], &[-2.0f32][..]));
    }

    #[test]
    fn csr_reconstructs_random_tensors_exactly() {
        // SplitMix64-driven sparse buffers reconstruct bit-for-bit.
        let mut z = 0x1234_5678u64;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        for rows in [1usize, 3, 8] {
            for row_len in [1usize, 5, 17] {
                let data: Vec<f32> = (0..rows * row_len)
                    .map(|_| {
                        let h = next();
                        if h % 4 == 0 {
                            (h >> 8) as f32 / u32::MAX as f32 - 0.5
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let idx = CsrIndex::build(&data, row_len);
                let mut back = vec![0f32; data.len()];
                for r in 0..rows {
                    let (cols, vals) = idx.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        back[r * row_len + c as usize] = v;
                    }
                }
                assert_eq!(
                    back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(idx.nnz(), analyze(&data).nnz);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn csr_rejects_ragged_data() {
        CsrIndex::build(&[1.0, 2.0, 3.0], 2);
    }
}
