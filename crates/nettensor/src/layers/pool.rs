//! Max pooling.
//!
//! The eval path carries a sparse fast lane: when the input is sparse
//! *and* every value is non-negative (sign bit clear, no NaN — true of
//! flowpic histograms and post-ReLU activations), the window max can be
//! computed by scatter-maxing only the stored cells over a zero-filled
//! output. Max over non-negatives is order-independent and an empty
//! window bottoms out at the `+0.0` the output already holds, so the
//! result is bit-identical to the dense scan; any negative, `-0.0` or
//! NaN value falls back to the dense loops. The training forward always
//! runs dense — it must record an argmax per window for the backward.

use super::Layer;
use crate::sparse::{analyze, CsrIndex, DEFAULT_SPARSITY_THRESHOLD};
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// `MaxPool2d(kernel)` with stride = kernel (non-overlapping windows), as
/// used by LeNet-5 (2×2). Trailing rows/columns that do not fill a window
/// are dropped, matching `nn.MaxPool2d` defaults.
pub struct MaxPool2d {
    kernel: usize,
    /// Input densities strictly below this take the sparse eval path
    /// (subject to the all-non-negative guard).
    sparsity_threshold: f32,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    pub fn new(kernel: usize) -> MaxPool2d {
        assert!(kernel >= 1);
        MaxPool2d {
            kernel,
            sparsity_threshold: DEFAULT_SPARSITY_THRESHOLD,
        }
    }

    /// Scatter-max of the stored (non-zero, all-positive) cells into a
    /// zero-filled output; cells in trailing rows/columns that don't
    /// fill a window are skipped, exactly as the dense scan never reads
    /// them.
    fn eval_sparse(
        &self,
        input: &Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
    ) -> Tensor {
        let k = self.kernel;
        let idx = CsrIndex::build(&input.data, w);
        let mut out = vec![0f32; n * c * oh * ow];
        for plane in 0..n * c {
            let out_base = plane * oh * ow;
            // Rows at or past oh*k are trailing leftovers: skip whole rows.
            for r in 0..(oh * k).min(h) {
                let (cols, vals) = idx.row(plane * h + r);
                let out_row = out_base + (r / k) * ow;
                for (&col, &v) in cols.iter().zip(vals) {
                    let col = col as usize;
                    if col >= ow * k {
                        // Columns ascend: the rest are trailing too.
                        break;
                    }
                    let slot = &mut out[out_row + col / k];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
        }
        Tensor::new(&[n, c, oh, ow], out)
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        assert_eq!(input.shape.len(), 4, "MaxPool2d expects [N,C,H,W]");
        let (n, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        let k = self.kernel;
        let (oh, ow) = (h / k, w / k);
        assert!(oh >= 1 && ow >= 1, "input {h}x{w} smaller than pool {k}");
        let mut out = vec![0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        for ni in 0..n {
            for ci in 0..c {
                let in_base = (ni * c + ci) * h * w;
                let out_base = (ni * c + ci) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::MIN;
                        let mut best_idx = 0;
                        for ki in 0..k {
                            for kj in 0..k {
                                let idx = in_base + (oi * k + ki) * w + (oj * k + kj);
                                if input.data[idx] > best {
                                    best = input.data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[out_base + oi * ow + oj] = best;
                        argmax[out_base + oi * ow + oj] = best_idx;
                    }
                }
            }
        }
        tape.push(TapeEntry::Argmax {
            argmax,
            input_shape: input.shape.clone(),
        });
        Tensor::new(&[n, c, oh, ow], out)
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape.len(), 4, "MaxPool2d expects [N,C,H,W]");
        let (n, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        let k = self.kernel;
        let (oh, ow) = (h / k, w / k);
        assert!(oh >= 1 && ow >= 1, "input {h}x{w} smaller than pool {k}");
        let stats = analyze(&input.data);
        if stats.density() < self.sparsity_threshold && stats.all_sign_positive {
            return self.eval_sparse(input, (n, c, h, w), (oh, ow));
        }
        let mut out = vec![0f32; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let in_base = (ni * c + ci) * h * w;
                let out_base = (ni * c + ci) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::MIN;
                        for ki in 0..k {
                            for kj in 0..k {
                                let v = input.data[in_base + (oi * k + ki) * w + (oj * k + kj)];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        out[out_base + oi * ow + oj] = best;
                    }
                }
            }
        }
        Tensor::new(&[n, c, oh, ow], out)
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Argmax {
            argmax,
            input_shape,
        } = entry
        else {
            panic!("MaxPool2d backward without a matching forward tape entry")
        };
        assert_eq!(
            grad_out.len(),
            argmax.len(),
            "gradient/argmax length mismatch"
        );
        let mut grad_in = Tensor::zeros(input_shape);
        for (g, &idx) in grad_out.data.iter().zip(argmax) {
            grad_in.data[idx] += g;
        }
        grad_in
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            input_shape[0],
            input_shape[1],
            input_shape[2] / self.kernel,
            input_shape[3] / self.kernel,
        ]
    }

    fn set_sparsity_threshold(&mut self, threshold: f32) {
        self.sparsity_threshold = threshold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_max_per_window() {
        let pool = MaxPool2d::new(2);
        let input = Tensor::new(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let out = pool.forward(&input, false, &mut Tape::new());
        assert_eq!(out.shape, vec![1, 1, 2, 2]);
        assert_eq!(out.data, vec![6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn odd_sizes_drop_trailing() {
        let pool = MaxPool2d::new(2);
        let out = pool.forward(&Tensor::zeros(&[1, 1, 5, 5]), false, &mut Tape::new());
        assert_eq!(out.shape, vec![1, 1, 2, 2]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let pool = MaxPool2d::new(2);
        let input = Tensor::new(&[1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]);
        let mut tape = Tape::new();
        pool.forward(&input, true, &mut tape);
        let grad = pool.backward(
            &tape.entries[0],
            &Tensor::new(&[1, 1, 1, 1], vec![5.0]),
            &mut [],
        );
        assert_eq!(grad.data, vec![0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn handles_negative_inputs() {
        let pool = MaxPool2d::new(2);
        let input = Tensor::new(&[1, 1, 2, 2], vec![-5.0, -1.0, -3.0, -4.0]);
        let out = pool.forward(&input, false, &mut Tape::new());
        assert_eq!(out.data, vec![-1.0]);
    }

    #[test]
    fn sparse_eval_matches_dense_bitwise() {
        // 5×6 plane (trailing row and no trailing col for k=2… actually
        // 5/2=2 rows, 6/2=3 cols) with three positive cells — one of
        // them in the dropped trailing row.
        let mut data = vec![0f32; 30];
        data[1] = 2.5; // row 0, col 1 → window (0, 0)
        data[15] = 7.0; // row 2, col 3 → window (1, 1)
        data[26] = 9.0; // row 4 — trailing, dropped
        let input = Tensor::new(&[1, 1, 5, 6], data);
        let pool = MaxPool2d::new(2);
        let sparse = pool.forward_eval(&input);
        let mut dense_pool = MaxPool2d::new(2);
        dense_pool.set_sparsity_threshold(0.0);
        let dense = dense_pool.forward_eval(&input);
        assert_eq!(
            sparse.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dense.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(sparse.data, vec![2.5, 0.0, 0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn sparse_eval_guard_rejects_negatives() {
        // A sparse input with negative values must fall back to the
        // dense scan: a scatter-max over a zero-filled output would
        // report 0.0 for the all-negative window below. Density is
        // 4/25 — under the default threshold, so only the positivity
        // guard keeps this correct.
        let mut data = vec![0f32; 25];
        data[0] = -3.0;
        data[1] = -5.0;
        data[5] = -1.0;
        data[6] = -2.0;
        let input = Tensor::new(&[1, 1, 5, 5], data);
        let pool = MaxPool2d::new(2);
        let eval = pool.forward_eval(&input);
        let train = pool.forward(&input, false, &mut Tape::new());
        assert_eq!(eval.data, train.data);
        assert_eq!(eval.data[0], -1.0, "all-negative window keeps its max");
    }

    #[test]
    fn lenet_shapes() {
        // Paper Listing 1: MaxPool2d-3 [6,28,28]→[6,14,14]; MaxPool2d-7
        // [16,10,10]→[16,5,5].
        let pool = MaxPool2d::new(2);
        assert_eq!(pool.output_shape(&[1, 6, 28, 28]), vec![1, 6, 14, 14]);
        assert_eq!(pool.output_shape(&[1, 16, 10, 10]), vec![1, 16, 5, 5]);
    }
}
