//! 1-D batch normalization.
//!
//! Added for the BYOL comparator: BYOL's stability depends on
//! normalization in the projector/predictor (without it the online and
//! target networks collapse to a constant representation — exactly what
//! the BN-free ablations of the BYOL literature report, and what this
//! workspace's own diagnostics reproduce). Semantics match
//! `nn.BatchNorm1d`: per-feature standardization over the batch with
//! learnable scale/shift, running statistics for evaluation mode.

use super::{Layer, ParamRef};
use crate::tensor::Tensor;

/// `BatchNorm1d(features)` over `[N, F]` inputs.
pub struct BatchNorm1d {
    features: usize,
    eps: f32,
    /// Running-statistics momentum (PyTorch default 0.1).
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    g_gamma: Tensor,
    g_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Backward cache.
    x_hat: Vec<f32>,
    centered: Vec<f32>,
    inv_std: Vec<f32>,
    batch: usize,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer (γ = 1, β = 0).
    pub fn new(features: usize) -> BatchNorm1d {
        BatchNorm1d {
            features,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::new(&[features], vec![1.0; features]),
            beta: Tensor::zeros(&[features]),
            g_gamma: Tensor::zeros(&[features]),
            g_beta: Tensor::zeros(&[features]),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            x_hat: Vec::new(),
            centered: Vec::new(),
            inv_std: Vec::new(),
            batch: 0,
        }
    }
}

impl Layer for BatchNorm1d {
    fn name(&self) -> &'static str {
        "BatchNorm1d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape.len(), 2, "BatchNorm1d expects [N, F]");
        let (n, f) = (input.shape[0], input.shape[1]);
        assert_eq!(f, self.features, "feature width mismatch");
        let mut out = Tensor::zeros(&[n, f]);

        if !train || n == 1 {
            // Evaluation (or degenerate single-sample batch): running stats.
            for i in 0..n {
                for j in 0..f {
                    let x_hat = (input.data[i * f + j] - self.running_mean[j])
                        / (self.running_var[j] + self.eps).sqrt();
                    out.data[i * f + j] = self.gamma.data[j] * x_hat + self.beta.data[j];
                }
            }
            // Mark the cache stale so a backward without a training forward
            // is caught.
            self.batch = 0;
            return out;
        }

        self.batch = n;
        self.x_hat = vec![0.0; n * f];
        self.centered = vec![0.0; n * f];
        self.inv_std = vec![0.0; f];
        for j in 0..f {
            let mean: f32 = (0..n).map(|i| input.data[i * f + j]).sum::<f32>() / n as f32;
            let var: f32 =
                (0..n).map(|i| (input.data[i * f + j] - mean).powi(2)).sum::<f32>() / n as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.inv_std[j] = inv_std;
            for i in 0..n {
                let c = input.data[i * f + j] - mean;
                self.centered[i * f + j] = c;
                let x_hat = c * inv_std;
                self.x_hat[i * f + j] = x_hat;
                out.data[i * f + j] = self.gamma.data[j] * x_hat + self.beta.data[j];
            }
            self.running_mean[j] = (1.0 - self.momentum) * self.running_mean[j] + self.momentum * mean;
            self.running_var[j] = (1.0 - self.momentum) * self.running_var[j] + self.momentum * var;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(self.batch > 0, "backward requires a training-mode forward");
        let (n, f) = (self.batch, self.features);
        assert_eq!(grad_out.shape, vec![n, f]);
        let mut grad_in = Tensor::zeros(&[n, f]);
        for j in 0..f {
            let mut sum_dy = 0f32;
            let mut sum_dy_xhat = 0f32;
            for i in 0..n {
                let dy = grad_out.data[i * f + j];
                sum_dy += dy;
                sum_dy_xhat += dy * self.x_hat[i * f + j];
            }
            self.g_beta.data[j] += sum_dy;
            self.g_gamma.data[j] += sum_dy_xhat;
            let scale = self.gamma.data[j] * self.inv_std[j] / n as f32;
            for i in 0..n {
                let dy = grad_out.data[i * f + j];
                grad_in.data[i * f + j] =
                    scale * (n as f32 * dy - sum_dy - self.x_hat[i * f + j] * sum_dy_xhat);
            }
        }
        grad_in
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef { param: &mut self.gamma, grad: &mut self.g_gamma },
            ParamRef { param: &mut self.beta, grad: &mut self.g_beta },
        ]
    }

    fn param_count(&self) -> usize {
        2 * self.features
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn training_forward_standardizes() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::new(&[4, 2], vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let y = bn.forward(&x, true);
        for j in 0..2 {
            let mean: f32 = (0..4).map(|i| y.data[i * 2 + j]).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|i| (y.data[i * 2 + j] - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm1d::new(1);
        // Feed the same batch repeatedly so running stats converge to it.
        let x = Tensor::new(&[4, 1], vec![2.0, 4.0, 6.0, 8.0]);
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // In eval mode, standardization uses the (converged) running
        // stats, so outputs match the training-mode standardization.
        let mean: f32 = y.data.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-2, "eval mean {mean}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut bn = BatchNorm1d::new(3);
        // Non-trivial gamma/beta so their gradients are exercised.
        bn.gamma.data = vec![1.5, 0.5, 2.0];
        bn.beta.data = vec![0.1, -0.2, 0.3];
        let x = Tensor::kaiming_uniform(&[5, 3], 1, 11);
        check_layer(&mut bn, &x, 5e-2);
    }

    #[test]
    fn single_sample_batch_falls_back_to_running_stats() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::new(&[1, 2], vec![3.0, 4.0]);
        let y = bn.forward(&x, true);
        assert!(y.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn param_count() {
        assert_eq!(BatchNorm1d::new(30).param_count(), 60);
    }
}
