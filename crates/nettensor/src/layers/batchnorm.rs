//! 1-D batch normalization.
//!
//! Added for the BYOL comparator: BYOL's stability depends on
//! normalization in the projector/predictor (without it the online and
//! target networks collapse to a constant representation — exactly what
//! the BN-free ablations of the BYOL literature report, and what this
//! workspace's own diagnostics reproduce). Semantics match
//! `nn.BatchNorm1d`: per-feature standardization over the batch with
//! learnable scale/shift, running statistics for evaluation mode.
//!
//! Under the tape API the training forward is `&self`: batch statistics
//! are recorded on the tape, and the running-statistics EMA update is
//! deferred to [`Layer::commit`], which the trainer applies after the
//! (potentially parallel) forward/backward — in fixed shard order, so the
//! update sequence is independent of worker count. Note that batch
//! statistics are computed per forward call: a sharded batch would
//! normalize per shard, which changes semantics, so networks containing
//! batch norm (only the BYOL nets here) train unsharded.

use super::Layer;
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// `BatchNorm1d(features)` over `[N, F]` inputs.
pub struct BatchNorm1d {
    features: usize,
    eps: f32,
    /// Running-statistics momentum (PyTorch default 0.1).
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer (γ = 1, β = 0).
    pub fn new(features: usize) -> BatchNorm1d {
        BatchNorm1d {
            features,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::new(&[features], vec![1.0; features]),
            beta: Tensor::zeros(&[features]),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
        }
    }
}

impl Layer for BatchNorm1d {
    fn name(&self) -> &'static str {
        "BatchNorm1d"
    }

    fn forward(&self, input: &Tensor, train: bool, tape: &mut Tape) -> Tensor {
        assert_eq!(input.shape.len(), 2, "BatchNorm1d expects [N, F]");
        let (n, f) = (input.shape[0], input.shape[1]);
        assert_eq!(f, self.features, "feature width mismatch");
        let mut out = Tensor::zeros(&[n, f]);

        if !train || n == 1 {
            // Evaluation (or degenerate single-sample batch): running
            // stats. Nothing for backward — an `Empty` entry makes a
            // backward through this pass fail loudly.
            for i in 0..n {
                for j in 0..f {
                    let x_hat = (input.data[i * f + j] - self.running_mean[j])
                        / (self.running_var[j] + self.eps).sqrt();
                    out.data[i * f + j] = self.gamma.data[j] * x_hat + self.beta.data[j];
                }
            }
            tape.push(TapeEntry::Empty);
            return out;
        }

        let mut x_hat = vec![0.0; n * f];
        let mut inv_std = vec![0.0; f];
        let mut mean_v = vec![0.0; f];
        let mut var_v = vec![0.0; f];
        for j in 0..f {
            let mean: f32 = (0..n).map(|i| input.data[i * f + j]).sum::<f32>() / n as f32;
            let var: f32 = (0..n)
                .map(|i| (input.data[i * f + j] - mean).powi(2))
                .sum::<f32>()
                / n as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std[j] = istd;
            mean_v[j] = mean;
            var_v[j] = var;
            for i in 0..n {
                let xh = (input.data[i * f + j] - mean) * istd;
                x_hat[i * f + j] = xh;
                out.data[i * f + j] = self.gamma.data[j] * xh + self.beta.data[j];
            }
        }
        tape.push(TapeEntry::BatchNorm {
            x_hat,
            inv_std,
            batch: n,
            mean: mean_v,
            var: var_v,
        });
        out
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::BatchNorm {
            x_hat,
            inv_std,
            batch,
            ..
        } = entry
        else {
            panic!("BatchNorm1d backward requires a training-mode forward")
        };
        let (n, f) = (*batch, self.features);
        assert_eq!(grad_out.shape, vec![n, f]);
        let [g_gamma, g_beta] = grads else {
            panic!("BatchNorm1d expects 2 gradient slots")
        };
        let mut grad_in = Tensor::zeros(&[n, f]);
        for j in 0..f {
            let mut sum_dy = 0f32;
            let mut sum_dy_xhat = 0f32;
            for i in 0..n {
                let dy = grad_out.data[i * f + j];
                sum_dy += dy;
                sum_dy_xhat += dy * x_hat[i * f + j];
            }
            g_beta.data[j] += sum_dy;
            g_gamma.data[j] += sum_dy_xhat;
            let scale = self.gamma.data[j] * inv_std[j] / n as f32;
            for i in 0..n {
                let dy = grad_out.data[i * f + j];
                grad_in.data[i * f + j] =
                    scale * (n as f32 * dy - sum_dy - x_hat[i * f + j] * sum_dy_xhat);
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn commit(&mut self, entry: &TapeEntry) {
        if let TapeEntry::BatchNorm { mean, var, .. } = entry {
            for j in 0..self.features {
                self.running_mean[j] =
                    (1.0 - self.momentum) * self.running_mean[j] + self.momentum * mean[j];
                self.running_var[j] =
                    (1.0 - self.momentum) * self.running_var[j] + self.momentum * var[j];
            }
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn batch_coupled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn training_forward_standardizes() {
        let bn = BatchNorm1d::new(2);
        let x = Tensor::new(&[4, 2], vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let y = bn.forward(&x, true, &mut Tape::new());
        for j in 0..2 {
            let mean: f32 = (0..4).map(|i| y.data[i * 2 + j]).sum::<f32>() / 4.0;
            let var: f32 = (0..4)
                .map(|i| (y.data[i * 2 + j] - mean).powi(2))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_committed_running_statistics() {
        let mut bn = BatchNorm1d::new(1);
        // Feed the same batch repeatedly, committing each tape so running
        // stats converge to the batch stats.
        let x = Tensor::new(&[4, 1], vec![2.0, 4.0, 6.0, 8.0]);
        for _ in 0..200 {
            let mut tape = Tape::new();
            bn.forward(&x, true, &mut tape);
            bn.commit(&tape.entries[0]);
        }
        let y = bn.forward(&x, false, &mut Tape::new());
        // In eval mode, standardization uses the (converged) running
        // stats, so outputs match the training-mode standardization.
        let mean: f32 = y.data.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-2, "eval mean {mean}");
    }

    #[test]
    fn forward_without_commit_leaves_running_stats_untouched() {
        let bn = BatchNorm1d::new(1);
        let x = Tensor::new(&[4, 1], vec![2.0, 4.0, 6.0, 8.0]);
        bn.forward(&x, true, &mut Tape::new());
        // No commit → eval still standardizes with the initial (0, 1).
        let y = bn.forward(
            &Tensor::new(&[2, 1], vec![0.0, 1.0]),
            false,
            &mut Tape::new(),
        );
        assert!((y.data[0] - 0.0).abs() < 1e-4);
        assert!((y.data[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut bn = BatchNorm1d::new(3);
        // Non-trivial gamma/beta so their gradients are exercised.
        bn.params_mut()[0].data = vec![1.5, 0.5, 2.0];
        bn.params_mut()[1].data = vec![0.1, -0.2, 0.3];
        let x = Tensor::kaiming_uniform(&[5, 3], 1, 11);
        check_layer(&mut bn, &x, 5e-2);
    }

    #[test]
    fn single_sample_batch_falls_back_to_running_stats() {
        let bn = BatchNorm1d::new(2);
        let x = Tensor::new(&[1, 2], vec![3.0, 4.0]);
        let y = bn.forward(&x, true, &mut Tape::new());
        assert!(y.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn param_count() {
        assert_eq!(BatchNorm1d::new(30).param_count(), 60);
    }
}
