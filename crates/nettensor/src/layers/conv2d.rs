//! 2-D convolution (valid padding, configurable stride) — the workhorse
//! of the paper's LeNet-5 "mini" architectures (stride 1) and the
//! strided first stages of the 1500×1500 "full-flowpic" network.
//!
//! Implemented as direct loops rather than im2col: the paper's inputs are
//! extremely sparse (a 32×32 flowpic has at most a few hundred non-zero
//! cells, a 1500×1500 one is >99.9 % zeros), so materializing the im2col
//! matrix would waste both memory and time; the direct loops skip
//! zero input cells in the backward accumulation.

use super::Layer;
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// `Conv2d(in_channels, out_channels, kernel_size)` with stride 1 and no
/// padding, matching `nn.Conv2d` defaults as used by the paper's networks.
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights `[out_c, in_c, k, k]`.
    w: Tensor,
    b: Tensor,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform initialization.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Conv2d {
        Conv2d::with_stride(in_channels, out_channels, kernel, 1, seed)
    }

    /// Creates a strided convolution (used by the 1500×1500 full-flowpic
    /// architecture, whose first stages downsample with stride 5).
    pub fn with_stride(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Conv2d {
        assert!(kernel >= 1 && in_channels >= 1 && out_channels >= 1 && stride >= 1);
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            w: Tensor::kaiming_uniform(&[out_channels, in_channels, kernel, kernel], fan_in, seed),
            b: Tensor::kaiming_uniform(&[out_channels], fan_in, seed.wrapping_add(1)),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input {h}x{w} smaller than kernel {}",
            self.kernel
        );
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }

    /// The pure convolution, shared by the training forward (which also
    /// tapes the input) and the tape-free eval path.
    fn compute(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape.len(),
            4,
            "Conv2d expects [N,C,H,W], got {:?}",
            input.shape
        );
        let (n, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        assert_eq!(c, self.in_channels, "channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let mut out = vec![0f32; n * self.out_channels * oh * ow];

        for ni in 0..n {
            for oc in 0..self.out_channels {
                let bias = self.b.data[oc];
                let out_base = (ni * self.out_channels + oc) * oh * ow;
                out[out_base..out_base + oh * ow]
                    .iter_mut()
                    .for_each(|v| *v = bias);
                for ic in 0..c {
                    let in_base = (ni * c + ic) * h * w;
                    let w_base = (oc * c + ic) * k * k;
                    for ki in 0..k {
                        for kj in 0..k {
                            let weight = self.w.data[w_base + ki * k + kj];
                            if weight == 0.0 {
                                continue;
                            }
                            for oi in 0..oh {
                                let in_row = in_base + (oi * self.stride + ki) * w + kj;
                                let out_row = out_base + oi * ow;
                                for oj in 0..ow {
                                    out[out_row + oj] +=
                                        weight * input.data[in_row + oj * self.stride];
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::new(&[n, self.out_channels, oh, ow], out)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        let out = self.compute(input);
        tape.push(TapeEntry::Input(input.clone()));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        self.compute(input)
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Input(input) = entry else {
            panic!("Conv2d backward without a matching forward tape entry")
        };
        let (n, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        assert_eq!(grad_out.shape, vec![n, self.out_channels, oh, ow]);
        let [gw, gb] = grads else {
            panic!("Conv2d expects 2 gradient slots")
        };

        let mut grad_in = vec![0f32; input.len()];
        for ni in 0..n {
            for oc in 0..self.out_channels {
                let out_base = (ni * self.out_channels + oc) * oh * ow;
                // Bias gradient: sum over spatial and batch.
                let g_sum: f32 = grad_out.data[out_base..out_base + oh * ow].iter().sum();
                gb.data[oc] += g_sum;
                for ic in 0..c {
                    let in_base = (ni * c + ic) * h * w;
                    let w_base = (oc * c + ic) * k * k;
                    for ki in 0..k {
                        for kj in 0..k {
                            let weight = self.w.data[w_base + ki * k + kj];
                            let mut gw_acc = 0f32;
                            for oi in 0..oh {
                                let in_row = in_base + (oi * self.stride + ki) * w + kj;
                                let out_row = out_base + oi * ow;
                                for oj in 0..ow {
                                    let g = grad_out.data[out_row + oj];
                                    gw_acc += g * input.data[in_row + oj * self.stride];
                                    grad_in[in_row + oj * self.stride] += g * weight;
                                }
                            }
                            gw.data[w_base + ki * k + kj] += gw_acc;
                        }
                    }
                }
            }
        }
        Tensor::new(&input.shape.clone(), grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], self.out_channels, oh, ow]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn output_shape_lenet_first_layer() {
        // Paper Listing 1: Conv2d-1 on 32×32 input → [6, 28, 28], 156 params.
        let conv = Conv2d::new(1, 6, 5, 0);
        assert_eq!(conv.output_shape(&[1, 1, 32, 32]), vec![1, 6, 28, 28]);
        assert_eq!(conv.param_count(), 156);
    }

    #[test]
    fn known_convolution_value() {
        let mut conv = Conv2d::new(1, 1, 2, 0);
        // Fix weights: [[1, 2], [3, 4]], bias 0.5.
        conv.w.data = vec![1.0, 2.0, 3.0, 4.0];
        conv.b.data = vec![0.5];
        let input = Tensor::new(&[1, 1, 2, 2], vec![1.0, 1.0, 1.0, 1.0]);
        let out = conv.forward(&input, false, &mut Tape::new());
        assert_eq!(out.shape, vec![1, 1, 1, 1]);
        assert_eq!(out.data, vec![10.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        let input = Tensor::kaiming_uniform(&[2, 2, 5, 5], 1, 42);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn batch_independence() {
        // Forward of a 2-batch equals the two singles stacked.
        let conv = Conv2d::new(1, 2, 3, 3);
        let a = Tensor::kaiming_uniform(&[1, 1, 6, 6], 1, 1);
        let b = Tensor::kaiming_uniform(&[1, 1, 6, 6], 1, 2);
        let mut both = a.data.clone();
        both.extend_from_slice(&b.data);
        let stacked = Tensor::new(&[2, 1, 6, 6], both);
        let out_a = conv.forward(&a, false, &mut Tape::new());
        let out_b = conv.forward(&b, false, &mut Tape::new());
        let out = conv.forward(&stacked, false, &mut Tape::new());
        assert_eq!(&out.data[..out_a.len()], &out_a.data[..]);
        assert_eq!(&out.data[out_a.len()..], &out_b.data[..]);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn rejects_undersized_input() {
        let conv = Conv2d::new(1, 1, 5, 0);
        conv.forward(&Tensor::zeros(&[1, 1, 3, 3]), false, &mut Tape::new());
    }

    #[test]
    fn gradients_accumulate_into_caller_slots() {
        let conv = Conv2d::new(1, 1, 2, 0);
        let input = Tensor::kaiming_uniform(&[1, 1, 3, 3], 1, 5);
        let mut tape = Tape::new();
        let out = conv.forward(&input, true, &mut tape);
        let ones = Tensor::new(&out.shape, vec![1.0; out.len()]);
        let mut grads: Vec<Tensor> = conv
            .params()
            .iter()
            .map(|p| Tensor::zeros(&p.shape))
            .collect();
        conv.backward(&tape.entries[0], &ones, &mut grads);
        assert!(grads[0].data.iter().any(|&v| v != 0.0));
        let first = grads[0].data.clone();
        // A second backward over the same slots accumulates (sums).
        conv.backward(&tape.entries[0], &ones, &mut grads);
        for (a, b) in grads[0].data.iter().zip(&first) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }
}

#[cfg(test)]
mod stride_tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;
    use crate::layers::Layer;

    #[test]
    fn strided_output_shape_full_flowpic() {
        // Full-flowpic first stage: Conv2d(1, 10, k=10, s=5) on 1500x1500
        // yields (1500-10)/5+1 = 299.
        let conv = Conv2d::with_stride(1, 10, 10, 5, 0);
        assert_eq!(
            conv.output_shape(&[1, 1, 1500, 1500]),
            vec![1, 10, 299, 299]
        );
    }

    #[test]
    fn strided_known_values() {
        let mut conv = Conv2d::with_stride(1, 1, 2, 2, 0);
        conv.w.data = vec![1.0, 1.0, 1.0, 1.0];
        conv.b.data = vec![0.0];
        let input = Tensor::new(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let out = conv.forward(&input, false, &mut Tape::new());
        assert_eq!(out.shape, vec![1, 1, 2, 2]);
        // Non-overlapping 2x2 window sums.
        assert_eq!(out.data, vec![14.0, 22.0, 46.0, 54.0]);
    }

    #[test]
    fn strided_gradients_match_finite_differences() {
        let mut conv = Conv2d::with_stride(1, 2, 3, 2, 5);
        let input = Tensor::kaiming_uniform(&[1, 1, 7, 7], 1, 17);
        check_layer(&mut conv, &input, 1e-2);
    }
}
