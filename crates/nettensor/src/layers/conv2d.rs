//! 2-D convolution (valid padding, configurable stride) — the workhorse
//! of the paper's LeNet-5 "mini" architectures (stride 1) and the
//! strided first stages of the 1500×1500 "full-flowpic" network.
//!
//! Three kernel families share the layer:
//!
//! * **dense** direct loops over every input cell; the forward skips
//!   zero-*weight* taps (`weight == 0.0` contributes nothing to any
//!   output cell), which is all the seed implementation ever did;
//! * **sparse** loops over a [`CsrIndex`] of non-zero cells built once
//!   per call: the forward and the weight-gradient pass index the
//!   *input* (they read only input cells), while the input-gradient
//!   pass indexes `grad_out` — `dL/dx` is non-zero wherever the output
//!   gradient is, *not* where the input is, so input-zero skipping
//!   there would be wrong;
//! * **GEMM** ([`crate::gemm`]): im2col lowering plus blocked matrix
//!   multiply for the dense regime, opt-in via [`Layer::set_gemm`].
//!   Blocked accumulation reorders sums, so this lane matches the
//!   direct loops only to floating-point tolerance — the training
//!   *forward* (which feeds the tape) and the default eval path stay on
//!   the order-identical kernels; with GEMM enabled, `forward_eval`
//!   takes it in the dense regime and `backward` replaces the fused
//!   dense nest with the GEMM adjoint.
//!
//! On top of these, [`Layer::prepare_int8_eval`] arms an int8-quantized
//! `forward_eval` lane for serving: per-output-channel symmetric weight
//! quantization computed once, per-*sample* activation scales (so the
//! lane is invariant to batching/sharding), i32 accumulation, f32
//! dequantize + bias. Approximate by construction; training and the
//! exact lanes are untouched.
//!
//! Dispatch is per call: densities below the layer's sparsity threshold
//! ([`DEFAULT_SPARSITY_THRESHOLD`], tunable via
//! [`Layer::set_sparsity_threshold`]) take the sparse path; post-ReLU
//! activations in deeper layers are dense and keep the dense loops.
//! Forced sentinel thresholds resolve via [`forced_path`] without the
//! O(len) density probe. Sparse and dense paths are **bit-identical**:
//! each accumulator sees its surviving addends in exactly the dense
//! order and only exact-`±0.0` addends are dropped (see `crate::sparse`
//! for the IEEE-754 argument; asserted dense-vs-sparse at densities
//! 0–100 % by the workspace proptests).

use super::Layer;
use crate::gemm;
use crate::sparse::{analyze, forced_path, CsrIndex, DEFAULT_SPARSITY_THRESHOLD};
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// `Conv2d(in_channels, out_channels, kernel_size)` with stride 1 and no
/// padding, matching `nn.Conv2d` defaults as used by the paper's networks.
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights `[out_c, in_c, k, k]`.
    w: Tensor,
    b: Tensor,
    /// Input densities strictly below this take the sparse kernels.
    sparsity_threshold: f32,
    /// When set, the dense regime of `forward_eval`/`backward` runs the
    /// im2col+GEMM kernels (tolerance, not bit-identity).
    gemm: bool,
    /// Armed by [`Layer::prepare_int8_eval`]: per-channel quantized
    /// weights for the int8 `forward_eval` lane.
    int8: Option<gemm::Int8Weights>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform initialization.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Conv2d {
        Conv2d::with_stride(in_channels, out_channels, kernel, 1, seed)
    }

    /// Creates a strided convolution (used by the 1500×1500 full-flowpic
    /// architecture, whose first stages downsample with stride 5).
    pub fn with_stride(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Conv2d {
        assert!(kernel >= 1 && in_channels >= 1 && out_channels >= 1 && stride >= 1);
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            w: Tensor::kaiming_uniform(&[out_channels, in_channels, kernel, kernel], fan_in, seed),
            b: Tensor::kaiming_uniform(&[out_channels], fan_in, seed.wrapping_add(1)),
            sparsity_threshold: DEFAULT_SPARSITY_THRESHOLD,
            gemm: false,
            int8: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input {h}x{w} smaller than kernel {}",
            self.kernel
        );
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }

    /// Validates `[N,C,H,W]` and returns `((n,c,h,w), (oh,ow))`.
    fn checked_dims(&self, input: &Tensor) -> ((usize, usize, usize, usize), (usize, usize)) {
        assert_eq!(
            input.shape.len(),
            4,
            "Conv2d expects [N,C,H,W], got {:?}",
            input.shape
        );
        let (n, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        assert_eq!(c, self.in_channels, "channel mismatch");
        ((n, c, h, w), self.out_hw(h, w))
    }

    /// Does the sparse path win for `data` under this layer's threshold?
    /// Sentinel thresholds resolve without the O(len) density probe.
    fn take_sparse(&self, data: &[f32]) -> bool {
        forced_path(self.sparsity_threshold)
            .unwrap_or_else(|| analyze(data).density() < self.sparsity_threshold)
    }

    /// The exact convolution — the training forward (which also tapes
    /// the input) and the default eval path. Dispatches dense or sparse
    /// only: both are order-identical, so the tape never sees GEMM bits.
    fn compute(&self, input: &Tensor) -> Tensor {
        let (dims, ohw) = self.checked_dims(input);
        if self.take_sparse(&input.data) {
            self.forward_sparse(input, dims, ohw)
        } else {
            self.forward_dense(input, dims, ohw)
        }
    }

    /// The eval-lane convolution: int8 if armed, else sparse/GEMM/dense
    /// by density and the GEMM opt-in.
    fn compute_eval(&self, input: &Tensor) -> Tensor {
        let (dims, ohw) = self.checked_dims(input);
        if let Some(q) = &self.int8 {
            return self.forward_int8(input, dims, ohw, q);
        }
        if self.take_sparse(&input.data) {
            self.forward_sparse(input, dims, ohw)
        } else if self.gemm {
            self.forward_gemm(input, dims, ohw)
        } else {
            self.forward_dense(input, dims, ohw)
        }
    }

    /// GEMM forward: lower each sample to im2col patches `[P, C·K·K]`
    /// once, then one `gemm_nt` against the weight view `[OC, C·K·K]`
    /// produces all output planes with contiguous inner products.
    /// Tolerance lane — see the module doc.
    fn forward_gemm(
        &self,
        input: &Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
    ) -> Tensor {
        let k = self.kernel;
        let (p, ckk, out_c) = (oh * ow, c * k * k, self.out_channels);
        let mut out = vec![0f32; n * out_c * p];
        let mut patches = Vec::new();
        let mut prod = vec![0f32; out_c * p];
        for ni in 0..n {
            let sample = &input.data[ni * c * h * w..(ni + 1) * c * h * w];
            gemm::im2col(sample, (c, h, w), k, self.stride, (oh, ow), &mut patches);
            gemm::gemm_nt(&self.w.data, &patches, out_c, ckk, p, &mut prod);
            let out_base = ni * out_c * p;
            for oc in 0..out_c {
                let bias = self.b.data[oc];
                let orow = &mut out[out_base + oc * p..out_base + (oc + 1) * p];
                for (o, &v) in orow.iter_mut().zip(&prod[oc * p..(oc + 1) * p]) {
                    *o = v + bias;
                }
            }
        }
        Tensor::new(&[n, out_c, oh, ow], out)
    }

    /// Int8 eval forward: quantized weights were prepared once
    /// (per-output-channel scales); activations are quantized here with
    /// a per-*sample* scale, multiplied in i32 over the im2col patches
    /// and dequantized (+ f32 bias) on the way out. The per-sample scale
    /// is what keeps this lane's results independent of how the batch
    /// engine groups samples into shards.
    fn forward_int8(
        &self,
        input: &Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
        q: &gemm::Int8Weights,
    ) -> Tensor {
        let k = self.kernel;
        let (p, out_c) = (oh * ow, self.out_channels);
        let ckk = q.row_len;
        let mut out = vec![0f32; n * out_c * p];
        let mut xq = Vec::new();
        let mut patches = Vec::new();
        for ni in 0..n {
            let sample = &input.data[ni * c * h * w..(ni + 1) * c * h * w];
            let out_base = ni * out_c * p;
            let sx = gemm::max_abs(sample) / 127.0;
            if sx == 0.0 {
                // All-zero sample: output is exactly the bias planes.
                for oc in 0..out_c {
                    let bias = self.b.data[oc];
                    out[out_base + oc * p..out_base + (oc + 1) * p]
                        .iter_mut()
                        .for_each(|v| *v = bias);
                }
                continue;
            }
            gemm::quantize_i8(sample, sx, &mut xq);
            gemm::im2col_i8(&xq, (c, h, w), k, self.stride, (oh, ow), &mut patches);
            for oc in 0..out_c {
                let wrow = q.row(oc);
                let dequant = sx * q.scale[oc];
                let bias = self.b.data[oc];
                let orow = &mut out[out_base + oc * p..out_base + (oc + 1) * p];
                for (pi, o) in orow.iter_mut().enumerate() {
                    let acc = gemm::dot_i8(wrow, &patches[pi * ckk..(pi + 1) * ckk]);
                    *o = acc as f32 * dequant + bias;
                }
            }
        }
        Tensor::new(&[n, out_c, oh, ow], out)
    }

    /// GEMM backward — the adjoint of [`Conv2d::forward_gemm`]:
    /// `gw += G·patches`, `grad_in = col2im(Gᵀ·W)`, bias from plane
    /// sums. Tolerance lane, taken only with GEMM enabled and both
    /// operands dense.
    #[allow(clippy::too_many_arguments)]
    fn backward_gemm(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        gw: &mut Tensor,
        gb: &mut Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
    ) -> Vec<f32> {
        let k = self.kernel;
        let s = self.stride;
        let (p, ckk, out_c) = (oh * ow, c * k * k, self.out_channels);
        let mut grad_in = vec![0f32; input.len()];
        let mut patches = Vec::new();
        let mut colgrad = vec![0f32; p * ckk];
        for ni in 0..n {
            // G for this sample, viewed [OC, P] row-major.
            let g = &grad_out.data[ni * out_c * p..(ni + 1) * out_c * p];
            for oc in 0..out_c {
                gb.data[oc] += g[oc * p..(oc + 1) * p].iter().sum::<f32>();
            }
            let sample = &input.data[ni * c * h * w..(ni + 1) * c * h * w];
            gemm::im2col(sample, (c, h, w), k, s, (oh, ow), &mut patches);
            // gw [OC, CKK] += G [OC, P] · patches [P, CKK].
            gemm::gemm_nn_acc(g, &patches, out_c, p, ckk, &mut gw.data);
            // grad_in: colgrad [P, CKK] = Gᵀ [P, OC] · W [OC, CKK],
            // scattered back through the im2col adjoint.
            let gt = gemm::transpose(g, out_c, p);
            colgrad.iter_mut().for_each(|v| *v = 0.0);
            gemm::gemm_nn_acc(&gt, &self.w.data, p, out_c, ckk, &mut colgrad);
            gemm::col2im_add(
                &colgrad,
                (c, h, w),
                k,
                s,
                (oh, ow),
                &mut grad_in[ni * c * h * w..(ni + 1) * c * h * w],
            );
        }
        grad_in
    }

    fn forward_dense(
        &self,
        input: &Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
    ) -> Tensor {
        let k = self.kernel;
        let mut out = vec![0f32; n * self.out_channels * oh * ow];

        for ni in 0..n {
            for oc in 0..self.out_channels {
                let bias = self.b.data[oc];
                let out_base = (ni * self.out_channels + oc) * oh * ow;
                out[out_base..out_base + oh * ow]
                    .iter_mut()
                    .for_each(|v| *v = bias);
                for ic in 0..c {
                    let in_base = (ni * c + ic) * h * w;
                    let w_base = (oc * c + ic) * k * k;
                    for ki in 0..k {
                        for kj in 0..k {
                            let weight = self.w.data[w_base + ki * k + kj];
                            if weight == 0.0 {
                                continue;
                            }
                            for oi in 0..oh {
                                let in_row = in_base + (oi * self.stride + ki) * w + kj;
                                let out_row = out_base + oi * ow;
                                for oj in 0..ow {
                                    out[out_row + oj] +=
                                        weight * input.data[in_row + oj * self.stride];
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::new(&[n, self.out_channels, oh, ow], out)
    }

    /// Sparse forward: walks only the non-zero input cells. Each output
    /// cell `(ni, oc, oi, oj)` accumulates over `(ic, ki, kj)` in the
    /// same ascending order as the dense loops (the `oc` loop sits
    /// innermost here, but per output cell the `(ic, ki, kj)` sequence
    /// is unchanged), and the same zero-weight taps are skipped — so the
    /// only dropped addends are `weight * 0.0`.
    fn forward_sparse(
        &self,
        input: &Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
    ) -> Tensor {
        let k = self.kernel;
        let s = self.stride;
        let out_c = self.out_channels;
        let idx = CsrIndex::build(&input.data, w);
        let mut out = vec![0f32; n * out_c * oh * ow];
        // The tap weight per output channel, regathered for every
        // (ic, ki, kj) so the hot loop reads it contiguously.
        let mut wbuf = vec![0f32; out_c];

        for ni in 0..n {
            for oc in 0..out_c {
                let bias = self.b.data[oc];
                let out_base = (ni * out_c + oc) * oh * ow;
                out[out_base..out_base + oh * ow]
                    .iter_mut()
                    .for_each(|v| *v = bias);
            }
            for ic in 0..c {
                let row_base = (ni * c + ic) * h;
                for ki in 0..k {
                    for kj in 0..k {
                        for (oc, slot) in wbuf.iter_mut().enumerate() {
                            *slot = self.w.data[(oc * c + ic) * k * k + ki * k + kj];
                        }
                        for oi in 0..oh {
                            let (cols, vals) = idx.row(row_base + oi * s + ki);
                            let o_row = ni * out_c * oh * ow + oi * ow;
                            for (&col, &v) in cols.iter().zip(vals) {
                                let col = col as usize;
                                if col < kj {
                                    continue;
                                }
                                let d = col - kj;
                                if !d.is_multiple_of(s) {
                                    continue;
                                }
                                let oj = d / s;
                                if oj >= ow {
                                    // Columns ascend: nothing further maps.
                                    break;
                                }
                                let o_cell = o_row + oj;
                                for (oc, &weight) in wbuf.iter().enumerate() {
                                    if weight == 0.0 {
                                        continue;
                                    }
                                    out[o_cell + oc * oh * ow] += weight * v;
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::new(&[n, out_c, oh, ow], out)
    }

    /// The seed's fused dense backward: one nest accumulates `gb`, `gw`
    /// and `grad_in` together. Kept verbatim for the dense-input,
    /// dense-gradient case.
    #[allow(clippy::too_many_arguments)]
    fn backward_dense_fused(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        gw: &mut Tensor,
        gb: &mut Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
    ) -> Vec<f32> {
        let k = self.kernel;
        let mut grad_in = vec![0f32; input.len()];
        for ni in 0..n {
            for oc in 0..self.out_channels {
                let out_base = (ni * self.out_channels + oc) * oh * ow;
                // Bias gradient: sum over spatial and batch.
                let g_sum: f32 = grad_out.data[out_base..out_base + oh * ow].iter().sum();
                gb.data[oc] += g_sum;
                for ic in 0..c {
                    let in_base = (ni * c + ic) * h * w;
                    let w_base = (oc * c + ic) * k * k;
                    for ki in 0..k {
                        for kj in 0..k {
                            let weight = self.w.data[w_base + ki * k + kj];
                            let mut gw_acc = 0f32;
                            for oi in 0..oh {
                                let in_row = in_base + (oi * self.stride + ki) * w + kj;
                                let out_row = out_base + oi * ow;
                                for oj in 0..ow {
                                    let g = grad_out.data[out_row + oj];
                                    gw_acc += g * input.data[in_row + oj * self.stride];
                                    grad_in[in_row + oj * self.stride] += g * weight;
                                }
                            }
                            gw.data[w_base + ki * k + kj] += gw_acc;
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Split backward for the sparse cases: bias, weight and input
    /// gradients run as three passes. Splitting the fused nest cannot
    /// change bits — no single accumulator's addend sequence is
    /// reordered by it — and each pass then independently picks its
    /// sparse or dense variant.
    #[allow(clippy::too_many_arguments)]
    fn backward_split(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        gw: &mut Tensor,
        gb: &mut Tensor,
        (n, c, h, w): (usize, usize, usize, usize),
        (oh, ow): (usize, usize),
        input_sparse: bool,
        grad_sparse: bool,
    ) -> Vec<f32> {
        let k = self.kernel;
        let s = self.stride;
        let out_c = self.out_channels;

        // Pass 1 — bias gradient: a plain per-plane sum, always dense.
        for ni in 0..n {
            for oc in 0..out_c {
                let out_base = (ni * out_c + oc) * oh * ow;
                let g_sum: f32 = grad_out.data[out_base..out_base + oh * ow].iter().sum();
                gb.data[oc] += g_sum;
            }
        }

        // Pass 2 — weight gradient: `gw[oc,ic,ki,kj] += Σ g·x`, reading
        // only input cells, so it can walk the input index.
        if input_sparse {
            let idx = CsrIndex::build(&input.data, w);
            // Per-(ic,ki,kj) accumulators for every output channel; the
            // row scan is shared across `oc` instead of repeated.
            let mut acc = vec![0f32; out_c];
            for ni in 0..n {
                for ic in 0..c {
                    let row_base = (ni * c + ic) * h;
                    for ki in 0..k {
                        for kj in 0..k {
                            acc.iter_mut().for_each(|a| *a = 0.0);
                            for oi in 0..oh {
                                let (cols, vals) = idx.row(row_base + oi * s + ki);
                                let g_row = ni * out_c * oh * ow + oi * ow;
                                for (&col, &v) in cols.iter().zip(vals) {
                                    let col = col as usize;
                                    if col < kj {
                                        continue;
                                    }
                                    let d = col - kj;
                                    if !d.is_multiple_of(s) {
                                        continue;
                                    }
                                    let oj = d / s;
                                    if oj >= ow {
                                        break;
                                    }
                                    let g_cell = g_row + oj;
                                    for (oc, a) in acc.iter_mut().enumerate() {
                                        *a += grad_out.data[g_cell + oc * oh * ow] * v;
                                    }
                                }
                            }
                            for (oc, &a) in acc.iter().enumerate() {
                                gw.data[(oc * c + ic) * k * k + ki * k + kj] += a;
                            }
                        }
                    }
                }
            }
        } else {
            for ni in 0..n {
                for oc in 0..out_c {
                    let out_base = (ni * out_c + oc) * oh * ow;
                    for ic in 0..c {
                        let in_base = (ni * c + ic) * h * w;
                        let w_base = (oc * c + ic) * k * k;
                        for ki in 0..k {
                            for kj in 0..k {
                                let mut gw_acc = 0f32;
                                for oi in 0..oh {
                                    let in_row = in_base + (oi * s + ki) * w + kj;
                                    let out_row = out_base + oi * ow;
                                    for oj in 0..ow {
                                        gw_acc += grad_out.data[out_row + oj]
                                            * input.data[in_row + oj * s];
                                    }
                                }
                                gw.data[w_base + ki * k + kj] += gw_acc;
                            }
                        }
                    }
                }
            }
        }

        // Pass 3 — input gradient: `dL/dx` is non-zero wherever the
        // *output* gradient is (a zero input cell still has a non-zero
        // gradient), so the sparse variant walks a grad_out index; the
        // input's own zeros are irrelevant here.
        let mut grad_in = vec![0f32; input.len()];
        if grad_sparse {
            let gidx = CsrIndex::build(&grad_out.data, ow);
            // The tap weight per input channel for a fixed (oc, ki, kj).
            let mut wbuf = vec![0f32; c];
            for ni in 0..n {
                for oc in 0..out_c {
                    let g_row_base = (ni * out_c + oc) * oh;
                    for ki in 0..k {
                        for kj in 0..k {
                            for (ic, slot) in wbuf.iter_mut().enumerate() {
                                *slot = self.w.data[(oc * c + ic) * k * k + ki * k + kj];
                            }
                            for oi in 0..oh {
                                let (cols, vals) = gidx.row(g_row_base + oi);
                                let in_row = ni * c * h * w + (oi * s + ki) * w + kj;
                                for (&oj, &g) in cols.iter().zip(vals) {
                                    let cell = in_row + oj as usize * s;
                                    for (ic, &weight) in wbuf.iter().enumerate() {
                                        if weight == 0.0 {
                                            continue;
                                        }
                                        grad_in[cell + ic * h * w] += g * weight;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        } else {
            for ni in 0..n {
                for oc in 0..out_c {
                    let out_base = (ni * out_c + oc) * oh * ow;
                    for ic in 0..c {
                        let in_base = (ni * c + ic) * h * w;
                        let w_base = (oc * c + ic) * k * k;
                        for ki in 0..k {
                            for kj in 0..k {
                                let weight = self.w.data[w_base + ki * k + kj];
                                for oi in 0..oh {
                                    let in_row = in_base + (oi * s + ki) * w + kj;
                                    let out_row = out_base + oi * ow;
                                    for oj in 0..ow {
                                        grad_in[in_row + oj * s] +=
                                            grad_out.data[out_row + oj] * weight;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        let out = self.compute(input);
        tape.push(TapeEntry::Input(input.clone()));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        self.compute_eval(input)
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Input(input) = entry else {
            panic!("Conv2d backward without a matching forward tape entry")
        };
        let (n, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad_out.shape, vec![n, self.out_channels, oh, ow]);
        let [gw, gb] = grads else {
            panic!("Conv2d expects 2 gradient slots")
        };

        // Forced sentinel thresholds decide both dispatches up front —
        // no O(len) density probes on either operand.
        let input_sparse = self.take_sparse(&input.data);
        let grad_sparse = self.take_sparse(&grad_out.data);
        let grad_in = if input_sparse || grad_sparse {
            self.backward_split(
                input,
                grad_out,
                gw,
                gb,
                (n, c, h, w),
                (oh, ow),
                input_sparse,
                grad_sparse,
            )
        } else if self.gemm {
            self.backward_gemm(input, grad_out, gw, gb, (n, c, h, w), (oh, ow))
        } else {
            self.backward_dense_fused(input, grad_out, gw, gb, (n, c, h, w), (oh, ow))
        };
        Tensor::new(&input.shape.clone(), grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], self.out_channels, oh, ow]
    }

    fn set_sparsity_threshold(&mut self, threshold: f32) {
        self.sparsity_threshold = threshold;
    }

    fn set_gemm(&mut self, enabled: bool) {
        self.gemm = enabled;
    }

    fn prepare_int8_eval(&mut self) {
        self.int8 = Some(gemm::Int8Weights::per_channel(
            &self.w.data,
            self.out_channels,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn output_shape_lenet_first_layer() {
        // Paper Listing 1: Conv2d-1 on 32×32 input → [6, 28, 28], 156 params.
        let conv = Conv2d::new(1, 6, 5, 0);
        assert_eq!(conv.output_shape(&[1, 1, 32, 32]), vec![1, 6, 28, 28]);
        assert_eq!(conv.param_count(), 156);
    }

    #[test]
    fn known_convolution_value() {
        let mut conv = Conv2d::new(1, 1, 2, 0);
        // Fix weights: [[1, 2], [3, 4]], bias 0.5.
        conv.w.data = vec![1.0, 2.0, 3.0, 4.0];
        conv.b.data = vec![0.5];
        let input = Tensor::new(&[1, 1, 2, 2], vec![1.0, 1.0, 1.0, 1.0]);
        let out = conv.forward(&input, false, &mut Tape::new());
        assert_eq!(out.shape, vec![1, 1, 1, 1]);
        assert_eq!(out.data, vec![10.5]);
    }

    #[test]
    fn known_convolution_value_on_sparse_path() {
        // Same fixture but forced through the sparse kernels.
        let mut conv = Conv2d::new(1, 1, 2, 0);
        conv.w.data = vec![1.0, 2.0, 3.0, 4.0];
        conv.b.data = vec![0.5];
        conv.set_sparsity_threshold(1.1);
        let input = Tensor::new(&[1, 1, 2, 2], vec![1.0, 1.0, 1.0, 1.0]);
        let out = conv.forward(&input, false, &mut Tape::new());
        assert_eq!(out.data, vec![10.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        let input = Tensor::kaiming_uniform(&[2, 2, 5, 5], 1, 42);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn gradients_match_finite_differences_sparse_forced() {
        // Threshold 1.1 makes every density "sparse", driving forward,
        // backward-weight and backward-data through the CSR kernels.
        let mut conv = Conv2d::new(2, 3, 3, 7);
        conv.set_sparsity_threshold(1.1);
        let input = Tensor::kaiming_uniform(&[2, 2, 5, 5], 1, 42);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn gradients_match_finite_differences_sparse_input() {
        // A genuinely sparse input (flowpic-like: few positive cells)
        // exercises the default dispatch into the sparse kernels.
        let mut conv = Conv2d::new(1, 2, 3, 11);
        let mut data = vec![0f32; 36];
        data[7] = 2.0;
        data[14] = 1.0;
        data[31] = 3.0;
        let input = Tensor::new(&[1, 1, 6, 6], data);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn batch_independence() {
        // Forward of a 2-batch equals the two singles stacked.
        let conv = Conv2d::new(1, 2, 3, 3);
        let a = Tensor::kaiming_uniform(&[1, 1, 6, 6], 1, 1);
        let b = Tensor::kaiming_uniform(&[1, 1, 6, 6], 1, 2);
        let mut both = a.data.clone();
        both.extend_from_slice(&b.data);
        let stacked = Tensor::new(&[2, 1, 6, 6], both);
        let out_a = conv.forward(&a, false, &mut Tape::new());
        let out_b = conv.forward(&b, false, &mut Tape::new());
        let out = conv.forward(&stacked, false, &mut Tape::new());
        assert_eq!(&out.data[..out_a.len()], &out_a.data[..]);
        assert_eq!(&out.data[out_a.len()..], &out_b.data[..]);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn rejects_undersized_input() {
        let conv = Conv2d::new(1, 1, 5, 0);
        conv.forward(&Tensor::zeros(&[1, 1, 3, 3]), false, &mut Tape::new());
    }

    #[test]
    fn gradients_accumulate_into_caller_slots() {
        let conv = Conv2d::new(1, 1, 2, 0);
        let input = Tensor::kaiming_uniform(&[1, 1, 3, 3], 1, 5);
        let mut tape = Tape::new();
        let out = conv.forward(&input, true, &mut tape);
        let ones = Tensor::new(&out.shape, vec![1.0; out.len()]);
        let mut grads: Vec<Tensor> = conv
            .params()
            .iter()
            .map(|p| Tensor::zeros(&p.shape))
            .collect();
        conv.backward(&tape.entries[0], &ones, &mut grads);
        assert!(grads[0].data.iter().any(|&v| v != 0.0));
        let first = grads[0].data.clone();
        // A second backward over the same slots accumulates (sums).
        conv.backward(&tape.entries[0], &ones, &mut grads);
        for (a, b) in grads[0].data.iter().zip(&first) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    /// Relative-tolerance comparison for the reordered GEMM/int8 lanes.
    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "cell {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_forward_matches_dense_within_tolerance() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        conv.set_sparsity_threshold(0.0); // force the dense regime
        let input = Tensor::kaiming_uniform(&[2, 2, 8, 8], 1, 42);
        let exact = conv.forward_eval(&input);
        conv.set_gemm(true);
        let via_gemm = conv.forward_eval(&input);
        assert_eq!(via_gemm.shape, exact.shape);
        assert_close(&via_gemm.data, &exact.data, 1e-5);
        // The training forward never takes GEMM: still bit-identical.
        let taped = conv.forward(&input, true, &mut Tape::new());
        assert_eq!(taped.data, exact.data);
    }

    #[test]
    fn gemm_strided_forward_matches_dense_within_tolerance() {
        let mut conv = Conv2d::with_stride(1, 2, 3, 2, 5);
        conv.set_sparsity_threshold(0.0);
        let input = Tensor::kaiming_uniform(&[1, 1, 9, 9], 1, 17);
        let exact = conv.forward_eval(&input);
        conv.set_gemm(true);
        assert_close(&conv.forward_eval(&input).data, &exact.data, 1e-5);
    }

    #[test]
    fn gemm_backward_matches_finite_differences() {
        // Gradcheck with the GEMM backward engaged (dense regime forced):
        // the forward is exact, the backward is the GEMM adjoint, so
        // central differences still validate it.
        let mut conv = Conv2d::new(2, 3, 3, 7);
        conv.set_sparsity_threshold(0.0);
        conv.set_gemm(true);
        let input = Tensor::kaiming_uniform(&[2, 2, 5, 5], 1, 42);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn gemm_strided_backward_matches_finite_differences() {
        let mut conv = Conv2d::with_stride(1, 2, 3, 2, 5);
        conv.set_sparsity_threshold(0.0);
        conv.set_gemm(true);
        let input = Tensor::kaiming_uniform(&[1, 1, 7, 7], 1, 17);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn gemm_backward_matches_exact_kernels_within_tolerance() {
        let input = Tensor::kaiming_uniform(&[2, 2, 6, 6], 1, 3);
        let run = |gemm_on: bool| {
            let mut conv = Conv2d::new(2, 3, 3, 7);
            conv.set_sparsity_threshold(0.0);
            conv.set_gemm(gemm_on);
            let mut tape = Tape::new();
            let out = conv.forward(&input, true, &mut tape);
            let g = Tensor::kaiming_uniform(&out.shape, 1, 9);
            let mut grads: Vec<Tensor> = conv
                .params()
                .iter()
                .map(|p| Tensor::zeros(&p.shape))
                .collect();
            let gin = conv.backward(&tape.entries[0], &g, &mut grads);
            (gin, grads)
        };
        let (gin_exact, grads_exact) = run(false);
        let (gin_gemm, grads_gemm) = run(true);
        assert_close(&gin_gemm.data, &gin_exact.data, 1e-4);
        assert_close(&grads_gemm[0].data, &grads_exact[0].data, 1e-4);
        assert_close(&grads_gemm[1].data, &grads_exact[1].data, 1e-4);
    }

    #[test]
    fn int8_eval_lane_tracks_the_exact_lane() {
        let mut conv = Conv2d::new(2, 4, 3, 13);
        let input = Tensor::kaiming_uniform(&[3, 2, 8, 8], 1, 21);
        let exact = conv.forward_eval(&input);
        conv.prepare_int8_eval();
        let quant = conv.forward_eval(&input);
        assert_eq!(quant.shape, exact.shape);
        // 8-bit weights and activations: ~1% of dynamic range per
        // operand; the tolerance is deliberately loose (this lane is
        // approximate by contract).
        let scale = exact.data.iter().fold(0f32, |m, v| m.max(v.abs()));
        for (&q, &e) in quant.data.iter().zip(&exact.data) {
            assert!((q - e).abs() <= 0.05 * (scale + 1.0), "{q} vs {e}");
        }
        // Training forward ignores the armed int8 state entirely.
        let taped = conv.forward(&input, true, &mut Tape::new());
        assert_eq!(taped.data, exact.data);
    }

    #[test]
    fn int8_all_zero_sample_is_exact_bias() {
        let mut conv = Conv2d::new(1, 3, 3, 9);
        conv.prepare_int8_eval();
        let out = conv.forward_eval(&Tensor::zeros(&[1, 1, 8, 8]));
        for oc in 0..3 {
            for &v in &out.data[oc * 36..(oc + 1) * 36] {
                assert_eq!(v.to_bits(), conv.b.data[oc].to_bits());
            }
        }
    }

    #[test]
    fn nan_threshold_forces_dense_bitwise() {
        // Library-level semantics of the NaN sentinel (the daemon/CLI
        // boundary rejects NaN before it gets here): `density() < NaN`
        // is false, so NaN must behave exactly like forced-dense — now
        // via `forced_path`, without probing.
        let mut data = vec![0f32; 64];
        data[5] = 2.0; // sparse enough that the default would go sparse
        let input = Tensor::new(&[1, 1, 8, 8], data);
        let mut conv = Conv2d::new(1, 2, 3, 3);
        conv.set_sparsity_threshold(0.0);
        let dense = conv.forward_eval(&input);
        conv.set_sparsity_threshold(f32::NAN);
        assert_eq!(conv.forward_eval(&input).data, dense.data);
    }

    #[test]
    fn forced_thresholds_keep_backward_bitwise() {
        // Satellite: forced sentinels skip the backward density probes;
        // the dispatched kernels (and their bits) must be unchanged.
        let input = Tensor::kaiming_uniform(&[1, 1, 6, 6], 1, 8);
        let run = |threshold: f32| {
            let mut conv = Conv2d::new(1, 2, 3, 3);
            conv.set_sparsity_threshold(threshold);
            let mut tape = Tape::new();
            let out = conv.forward(&input, true, &mut tape);
            let g = Tensor::new(&out.shape, vec![0.5; out.len()]);
            let mut grads: Vec<Tensor> = conv
                .params()
                .iter()
                .map(|p| Tensor::zeros(&p.shape))
                .collect();
            let gin = conv.backward(&tape.entries[0], &g, &mut grads);
            (gin.data, grads[0].data.clone(), grads[1].data.clone())
        };
        // Kaiming input is fully dense: default threshold dispatches
        // dense, so forced-dense must match it bit-for-bit…
        assert_eq!(run(0.0), run(DEFAULT_SPARSITY_THRESHOLD));
        // …and forced-sparse matches too (sparse kernels are
        // order-identical by the crate::sparse contract).
        assert_eq!(run(1.1), run(0.0));
    }

    #[test]
    fn all_zero_input_takes_sparse_path_and_yields_pure_bias() {
        let conv = Conv2d::new(1, 3, 3, 9);
        let input = Tensor::zeros(&[2, 1, 8, 8]);
        let out = conv.forward_eval(&input);
        for ni in 0..2 {
            for oc in 0..3 {
                let base = (ni * 3 + oc) * 36;
                for &v in &out.data[base..base + 36] {
                    assert_eq!(v.to_bits(), conv.b.data[oc].to_bits());
                }
            }
        }
    }
}

#[cfg(test)]
mod stride_tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;
    use crate::layers::Layer;

    #[test]
    fn strided_output_shape_full_flowpic() {
        // Full-flowpic first stage: Conv2d(1, 10, k=10, s=5) on 1500x1500
        // yields (1500-10)/5+1 = 299.
        let conv = Conv2d::with_stride(1, 10, 10, 5, 0);
        assert_eq!(
            conv.output_shape(&[1, 1, 1500, 1500]),
            vec![1, 10, 299, 299]
        );
    }

    #[test]
    fn strided_known_values() {
        let mut conv = Conv2d::with_stride(1, 1, 2, 2, 0);
        conv.w.data = vec![1.0, 1.0, 1.0, 1.0];
        conv.b.data = vec![0.0];
        let input = Tensor::new(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let out = conv.forward(&input, false, &mut Tape::new());
        assert_eq!(out.shape, vec![1, 1, 2, 2]);
        // Non-overlapping 2x2 window sums.
        assert_eq!(out.data, vec![14.0, 22.0, 46.0, 54.0]);
    }

    #[test]
    fn strided_known_values_on_sparse_path() {
        let mut conv = Conv2d::with_stride(1, 1, 2, 2, 0);
        conv.w.data = vec![1.0, 1.0, 1.0, 1.0];
        conv.b.data = vec![0.0];
        conv.set_sparsity_threshold(1.1);
        let input = Tensor::new(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let out = conv.forward(&input, false, &mut Tape::new());
        assert_eq!(out.data, vec![14.0, 22.0, 46.0, 54.0]);
    }

    #[test]
    fn strided_gradients_match_finite_differences() {
        let mut conv = Conv2d::with_stride(1, 2, 3, 2, 5);
        let input = Tensor::kaiming_uniform(&[1, 1, 7, 7], 1, 17);
        check_layer(&mut conv, &input, 1e-2);
    }

    #[test]
    fn strided_gradients_match_finite_differences_sparse_forced() {
        let mut conv = Conv2d::with_stride(1, 2, 3, 2, 5);
        conv.set_sparsity_threshold(1.1);
        let input = Tensor::kaiming_uniform(&[1, 1, 7, 7], 1, 17);
        check_layer(&mut conv, &input, 1e-2);
    }
}
