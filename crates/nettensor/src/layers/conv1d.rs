//! 1-D convolution over sequences — for the packet-time-series CNN.
//!
//! The paper's Sec. 2.3 closes with "we believe [the augmentations]
//! should be extended to packet time-series too in a future work"; the
//! time-series classifier that extension needs convolves over the packet
//! sequence (`[N, C, L]`) instead of the flowpic image.

use super::Layer;
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// `Conv1d(in_channels, out_channels, kernel_size)` with stride 1, no
/// padding, matching `nn.Conv1d` defaults.
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Weights `[out_c, in_c, k]`.
    w: Tensor,
    b: Tensor,
}

impl Conv1d {
    /// Creates a 1-D convolution with Kaiming-uniform initialization.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Conv1d {
        assert!(kernel >= 1 && in_channels >= 1 && out_channels >= 1);
        let fan_in = in_channels * kernel;
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            w: Tensor::kaiming_uniform(&[out_channels, in_channels, kernel], fan_in, seed),
            b: Tensor::kaiming_uniform(&[out_channels], fan_in, seed.wrapping_add(1)),
        }
    }

    fn out_len(&self, l: usize) -> usize {
        assert!(
            l >= self.kernel,
            "input length {l} smaller than kernel {}",
            self.kernel
        );
        l - self.kernel + 1
    }

    /// The pure convolution, shared by the taped forward and the
    /// tape-free eval path.
    fn compute(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape.len(),
            3,
            "Conv1d expects [N,C,L], got {:?}",
            input.shape
        );
        let (n, c, l) = (input.shape[0], input.shape[1], input.shape[2]);
        assert_eq!(c, self.in_channels, "channel mismatch");
        let ol = self.out_len(l);
        let k = self.kernel;
        let mut out = vec![0f32; n * self.out_channels * ol];
        for ni in 0..n {
            for oc in 0..self.out_channels {
                let out_base = (ni * self.out_channels + oc) * ol;
                out[out_base..out_base + ol]
                    .iter_mut()
                    .for_each(|v| *v = self.b.data[oc]);
                for ic in 0..c {
                    let in_base = (ni * c + ic) * l;
                    let w_base = (oc * c + ic) * k;
                    for ki in 0..k {
                        let weight = self.w.data[w_base + ki];
                        if weight == 0.0 {
                            continue;
                        }
                        for oi in 0..ol {
                            out[out_base + oi] += weight * input.data[in_base + oi + ki];
                        }
                    }
                }
            }
        }
        Tensor::new(&[n, self.out_channels, ol], out)
    }
}

impl Layer for Conv1d {
    fn name(&self) -> &'static str {
        "Conv1d"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        let out = self.compute(input);
        tape.push(TapeEntry::Input(input.clone()));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        self.compute(input)
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Input(input) = entry else {
            panic!("Conv1d backward without a matching forward tape entry")
        };
        let (n, c, l) = (input.shape[0], input.shape[1], input.shape[2]);
        let ol = self.out_len(l);
        let k = self.kernel;
        assert_eq!(grad_out.shape, vec![n, self.out_channels, ol]);
        let [gw, gb] = grads else {
            panic!("Conv1d expects 2 gradient slots")
        };
        let mut grad_in = vec![0f32; input.len()];
        for ni in 0..n {
            for oc in 0..self.out_channels {
                let out_base = (ni * self.out_channels + oc) * ol;
                gb.data[oc] += grad_out.data[out_base..out_base + ol].iter().sum::<f32>();
                for ic in 0..c {
                    let in_base = (ni * c + ic) * l;
                    let w_base = (oc * c + ic) * k;
                    for ki in 0..k {
                        let weight = self.w.data[w_base + ki];
                        let mut gw_acc = 0f32;
                        for oi in 0..ol {
                            let g = grad_out.data[out_base + oi];
                            gw_acc += g * input.data[in_base + oi + ki];
                            grad_in[in_base + oi + ki] += g * weight;
                        }
                        gw.data[w_base + ki] += gw_acc;
                    }
                }
            }
        }
        Tensor::new(&input.shape.clone(), grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            input_shape[0],
            self.out_channels,
            self.out_len(input_shape[2]),
        ]
    }
}

/// `MaxPool1d(kernel)` with stride = kernel.
pub struct MaxPool1d {
    kernel: usize,
}

impl MaxPool1d {
    /// Creates a pooling layer.
    pub fn new(kernel: usize) -> MaxPool1d {
        assert!(kernel >= 1);
        MaxPool1d { kernel }
    }
}

impl Layer for MaxPool1d {
    fn name(&self) -> &'static str {
        "MaxPool1d"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        assert_eq!(input.shape.len(), 3, "MaxPool1d expects [N,C,L]");
        let (n, c, l) = (input.shape[0], input.shape[1], input.shape[2]);
        let k = self.kernel;
        let ol = l / k;
        assert!(ol >= 1, "input length {l} smaller than pool {k}");
        let mut out = vec![0f32; n * c * ol];
        let mut argmax = vec![0usize; out.len()];
        for nc in 0..n * c {
            let in_base = nc * l;
            let out_base = nc * ol;
            for oi in 0..ol {
                let mut best = f32::MIN;
                let mut best_idx = 0;
                for ki in 0..k {
                    let idx = in_base + oi * k + ki;
                    if input.data[idx] > best {
                        best = input.data[idx];
                        best_idx = idx;
                    }
                }
                out[out_base + oi] = best;
                argmax[out_base + oi] = best_idx;
            }
        }
        tape.push(TapeEntry::Argmax {
            argmax,
            input_shape: input.shape.clone(),
        });
        Tensor::new(&[n, c, ol], out)
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape.len(), 3, "MaxPool1d expects [N,C,L]");
        let (n, c, l) = (input.shape[0], input.shape[1], input.shape[2]);
        let k = self.kernel;
        let ol = l / k;
        assert!(ol >= 1, "input length {l} smaller than pool {k}");
        let mut out = vec![0f32; n * c * ol];
        for nc in 0..n * c {
            let in_base = nc * l;
            let out_base = nc * ol;
            for oi in 0..ol {
                let mut best = f32::MIN;
                for ki in 0..k {
                    let v = input.data[in_base + oi * k + ki];
                    if v > best {
                        best = v;
                    }
                }
                out[out_base + oi] = best;
            }
        }
        Tensor::new(&[n, c, ol], out)
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Argmax {
            argmax,
            input_shape,
        } = entry
        else {
            panic!("MaxPool1d backward without a matching forward tape entry")
        };
        assert_eq!(
            grad_out.len(),
            argmax.len(),
            "gradient/argmax length mismatch"
        );
        let mut grad_in = Tensor::zeros(input_shape);
        for (g, &idx) in grad_out.data.iter().zip(argmax) {
            grad_in.data[idx] += g;
        }
        grad_in
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1], input_shape[2] / self.kernel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn known_convolution_value() {
        let mut conv = Conv1d::new(1, 1, 2, 0);
        conv.params_mut()[0].data = vec![1.0, 2.0];
        conv.params_mut()[1].data = vec![0.5];
        let x = Tensor::new(&[1, 1, 3], vec![1.0, 2.0, 3.0]);
        let y = conv.forward(&x, false, &mut Tape::new());
        // [1*1+2*2, 1*2+2*3] + 0.5
        assert_eq!(y.data, vec![5.5, 8.5]);
    }

    #[test]
    fn conv1d_gradients_match_finite_differences() {
        let mut conv = Conv1d::new(2, 3, 3, 7);
        let x = Tensor::kaiming_uniform(&[2, 2, 8], 1, 21);
        check_layer(&mut conv, &x, 1e-2);
    }

    #[test]
    fn multichannel_shapes() {
        let conv = Conv1d::new(3, 8, 5, 0);
        assert_eq!(conv.output_shape(&[4, 3, 30]), vec![4, 8, 26]);
        assert_eq!(conv.param_count(), 8 * 3 * 5 + 8);
    }

    #[test]
    fn pool1d_max_and_backward() {
        let pool = MaxPool1d::new(2);
        let x = Tensor::new(&[1, 1, 4], vec![1.0, 5.0, 2.0, 3.0]);
        let mut tape = Tape::new();
        let y = pool.forward(&x, false, &mut tape);
        assert_eq!(y.data, vec![5.0, 3.0]);
        let g = pool.backward(
            &tape.entries[0],
            &Tensor::new(&[1, 1, 2], vec![1.0, 2.0]),
            &mut [],
        );
        assert_eq!(g.data, vec![0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn pool1d_drops_trailing() {
        let pool = MaxPool1d::new(2);
        let y = pool.forward(&Tensor::zeros(&[1, 2, 5]), false, &mut Tape::new());
        assert_eq!(y.shape, vec![1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn conv1d_rejects_short_input() {
        Conv1d::new(1, 1, 5, 0).forward(&Tensor::zeros(&[1, 1, 3]), false, &mut Tape::new());
    }
}
