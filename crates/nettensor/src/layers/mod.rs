//! Neural-network layers with explicit forward/backward passes.
//!
//! All layers implement [`Layer`]: `forward` caches whatever the backward
//! pass needs, `backward` consumes the cached state, accumulates parameter
//! gradients and returns the gradient with respect to the layer input.
//! Batch dimension is always first; convolutional tensors are
//! `[N, C, H, W]` row-major.

mod batchnorm;
mod conv1d;
mod conv2d;
mod linear;
mod pool;
mod simple;

pub use batchnorm::BatchNorm1d;
pub use conv1d::{Conv1d, MaxPool1d};
pub use conv2d::Conv2d;
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use simple::{Dropout, Flatten, Identity, ReLU, Sigmoid, Tanh};

use crate::tensor::Tensor;

/// A mutable view of one parameter tensor and its gradient accumulator.
pub struct ParamRef<'a> {
    /// The parameter values.
    pub param: &'a mut Tensor,
    /// The accumulated gradient (same shape as `param`).
    pub grad: &'a mut Tensor,
}

/// A neural-network layer.
pub trait Layer: Send {
    /// Layer type name, as printed by the model summary (mirrors the
    /// paper's App. C listings, e.g. `"Conv2d"`, `"Identity"`).
    fn name(&self) -> &'static str;

    /// Forward pass. `train` toggles training-only behaviour (dropout).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: takes `dL/d(output)`, accumulates parameter
    /// gradients, returns `dL/d(input)`. Must be called after `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to `(parameter, gradient)` pairs. Parameter-free
    /// layers return an empty vec.
    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Output shape for a given input shape (used by the summary).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.grad.fill_zero();
        }
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by the layer tests.

    use super::*;

    /// Verifies `layer`'s input gradient and parameter gradients against
    /// central finite differences on the scalar loss `sum(forward(x))`.
    pub fn check_layer<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let eps = 1e-2f32;

        // Analytic gradients.
        let out = layer.forward(input, true);
        let ones = Tensor::new(&out.shape, vec![1.0; out.len()]);
        layer.zero_grad();
        let grad_in = layer.backward(&ones);

        // Input gradient check.
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data[i] += eps;
            let mut minus = input.clone();
            minus.data[i] -= eps;
            let f_plus = layer.forward(&plus, true).sum();
            let f_minus = layer.forward(&minus, true).sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (grad_in.data[i] - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "input grad [{i}]: analytic {} vs numeric {numeric}",
                grad_in.data[i]
            );
        }

        // Parameter gradient check (re-run analytic pass first since the
        // input loop overwrote the cache).
        layer.forward(input, true);
        layer.zero_grad();
        layer.backward(&ones);
        let analytic: Vec<Vec<f32>> =
            layer.params().iter().map(|p| p.grad.data.clone()).collect();
        let n_params = analytic.len();
        for pi in 0..n_params {
            for i in 0..analytic[pi].len() {
                let orig = layer.params()[pi].param.data[i];
                layer.params()[pi].param.data[i] = orig + eps;
                let f_plus = layer.forward(input, true).sum();
                layer.params()[pi].param.data[i] = orig - eps;
                let f_minus = layer.forward(input, true).sum();
                layer.params()[pi].param.data[i] = orig;
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                assert!(
                    (analytic[pi][i] - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "param {pi} grad [{i}]: analytic {} vs numeric {numeric}",
                    analytic[pi][i]
                );
            }
        }
    }
}
