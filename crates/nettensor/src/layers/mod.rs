//! Neural-network layers with explicit forward/backward passes.
//!
//! All layers implement [`Layer`]. Layers hold **parameters only** —
//! activation state (cached inputs, masks, argmax indices, batch
//! statistics) is recorded on a caller-owned [`Tape`] during `forward`,
//! and parameter gradients accumulate into caller-owned slots during
//! `backward`. Both passes therefore take `&self`, making every layer
//! (and [`crate::model::Sequential`]) `Sync` so batch shards can run
//! concurrently against shared parameters.
//!
//! Batch dimension is always first; convolutional tensors are
//! `[N, C, H, W]` row-major.

mod batchnorm;
mod conv1d;
mod conv2d;
mod linear;
mod pool;
mod simple;

pub use batchnorm::BatchNorm1d;
pub use conv1d::{Conv1d, MaxPool1d};
pub use conv2d::Conv2d;
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use simple::{Dropout, Flatten, Identity, ReLU, Sigmoid, Tanh};

use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// A neural-network layer: parameters plus pure forward/backward maps.
pub trait Layer: Send + Sync {
    /// Layer type name, as printed by the model summary (mirrors the
    /// paper's App. C listings, e.g. `"Conv2d"`, `"Identity"`).
    fn name(&self) -> &'static str;

    /// Forward pass. `train` toggles training-only behaviour (dropout,
    /// batch statistics). Pushes exactly one [`TapeEntry`] holding
    /// whatever the backward pass will need — [`TapeEntry::Empty`] if
    /// nothing.
    fn forward(&self, input: &Tensor, train: bool, tape: &mut Tape) -> Tensor;

    /// Evaluation forward without activation recording — the inference
    /// fast path behind [`crate::model::Sequential::predict`]. Must be
    /// bit-identical to `forward(input, false, tape)` unless an opt-in
    /// approximate lane is armed ([`Layer::set_gemm`] in the dense
    /// regime, or [`Layer::prepare_int8_eval`]) — both default off, so
    /// an untouched layer always keeps the bit-identity contract. The
    /// default delegates through a throwaway tape; layers that cache
    /// tensors for the backward pass (convolutions, linear, pooling,
    /// activations) override this to skip that bookkeeping entirely.
    fn forward_eval(&self, input: &Tensor) -> Tensor {
        self.forward(input, false, &mut Tape::new())
    }

    /// Backward pass: takes this layer's tape entry (written by the
    /// matching `forward`) and `dL/d(output)`, accumulates parameter
    /// gradients into `grads` (one slot per tensor of [`Layer::params`],
    /// same order) and returns `dL/d(input)`.
    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor;

    /// Parameter tensors, in a fixed order. Parameter-free layers return
    /// an empty vec.
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable parameter tensors, same order as [`Layer::params`]. Only
    /// optimizers and weight import/transplant paths use this.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Output shape for a given input shape (used by the summary).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Applies deferred internal-state updates recorded on the tape —
    /// batch norm folds its batch statistics into the running estimates
    /// here. Called once per training forward, **after** the parallel
    /// section, in fixed shard order. Default: no-op.
    fn commit(&mut self, entry: &TapeEntry) {
        let _ = entry;
    }

    /// Whether this layer's *training-mode* forward couples samples
    /// within a batch (batch norm's batch statistics). Batch-coupled
    /// layers give shard-local — i.e. wrong — results under a sharded
    /// [`crate::engine::BatchEngine`], which therefore refuses to train
    /// them. Default: `false` (per-sample layers).
    fn batch_coupled(&self) -> bool {
        false
    }

    /// Sets the input-density cutoff below which this layer's
    /// sparsity-aware kernels dispatch (see [`crate::sparse`]). Sparse
    /// and dense paths are bit-identical, so this is purely a
    /// performance knob. Sentinel values force one path outright and
    /// are resolved without a density probe
    /// ([`crate::sparse::forced_path`]): any value `<= 0.0` forces
    /// dense, any value `> 1.0` (conventionally `1.1`) forces sparse —
    /// density is ≤ 1, and exactly `1.0` still probes. A NaN threshold
    /// also forces dense (`density() < NaN` is false); serving
    /// boundaries (daemon `set-config`, `tcb ctl`) reject non-finite
    /// and out-of-`[0.0, 1.1]` values before they reach a layer, but
    /// the library itself stays total. The default
    /// [`crate::sparse::DEFAULT_SPARSITY_THRESHOLD`] engages the sparse
    /// kernels only where they clearly win (flowpic-grade sparsity).
    /// Layers without sparse kernels ignore it (default no-op).
    fn set_sparsity_threshold(&mut self, threshold: f32) {
        let _ = threshold;
    }

    /// Enables the im2col+GEMM kernels for this layer's dense regime
    /// (`Conv2d` only; default no-op). Opt-in because blocked
    /// accumulation reorders sums: with GEMM on, `forward_eval` in the
    /// dense regime and the dense `backward` match the exact kernels
    /// only to floating-point tolerance, while the training *forward*
    /// (the activations on the tape) stays on the order-identical
    /// kernels. Off (the default) preserves full bit-identity.
    fn set_gemm(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Arms an int8-quantized `forward_eval` lane: per-output-channel
    /// symmetric weight quantization computed here, once, from the
    /// current weights; activations are quantized per sample at eval
    /// time. Approximate by contract — only serving paths that opted in
    /// (`--quant int8`) call this, training and the exact eval lane are
    /// untouched. Quantized state is derived from the weights at call
    /// time; re-arm after any weight mutation. Default no-op for layers
    /// without a quantized kernel.
    fn prepare_int8_eval(&mut self) {}
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by the layer tests.

    use super::*;
    use crate::tape::Tape;

    fn forward_sum<L: Layer + ?Sized>(layer: &L, input: &Tensor) -> f32 {
        let mut tape = Tape::new();
        layer.forward(input, true, &mut tape).sum()
    }

    /// Verifies `layer`'s input gradient and parameter gradients against
    /// central finite differences on the scalar loss `sum(forward(x))`.
    ///
    /// Runs in training mode; layers with hash-derived randomness
    /// (dropout) are deterministic for a fixed tape context, so repeated
    /// forwards see identical masks and finite differences stay valid.
    pub fn check_layer<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let eps = 1e-2f32;

        // Analytic gradients through the tape API.
        let mut tape = Tape::new();
        let out = layer.forward(input, true, &mut tape);
        let ones = Tensor::new(&out.shape, vec![1.0; out.len()]);
        let mut grads: Vec<Tensor> = layer
            .params()
            .iter()
            .map(|p| Tensor::zeros(&p.shape))
            .collect();
        let grad_in = layer.backward(&tape.entries[0], &ones, &mut grads);

        // Input gradient check.
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data[i] += eps;
            let mut minus = input.clone();
            minus.data[i] -= eps;
            let numeric = (forward_sum(layer, &plus) - forward_sum(layer, &minus)) / (2.0 * eps);
            assert!(
                (grad_in.data[i] - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "input grad [{i}]: analytic {} vs numeric {numeric}",
                grad_in.data[i]
            );
        }

        // Parameter gradient check. The index walks three parallel
        // views of the same parameter list (grads, params, params_mut),
        // so a range loop is the honest shape here.
        let n_params = grads.len();
        #[allow(clippy::needless_range_loop)]
        for pi in 0..n_params {
            for i in 0..grads[pi].len() {
                let orig = layer.params()[pi].data[i];
                layer.params_mut()[pi].data[i] = orig + eps;
                let f_plus = forward_sum(layer, input);
                layer.params_mut()[pi].data[i] = orig - eps;
                let f_minus = forward_sum(layer, input);
                layer.params_mut()[pi].data[i] = orig;
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                assert!(
                    (grads[pi].data[i] - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "param {pi} grad [{i}]: analytic {} vs numeric {numeric}",
                    grads[pi].data[i]
                );
            }
        }
    }
}
