//! Parameter-free layers: ReLU, Dropout, Flatten, Identity, Tanh, Sigmoid.

use super::Layer;
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// Rectified linear unit.
pub struct ReLU;

impl ReLU {
    /// Creates a ReLU.
    pub fn new() -> ReLU {
        ReLU
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        tape.push(TapeEntry::Mask(
            input.data.iter().map(|&v| v > 0.0).collect(),
        ));
        Tensor::new(
            &input.shape,
            input.data.iter().map(|&v| v.max(0.0)).collect(),
        )
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        Tensor::new(
            &input.shape,
            input.data.iter().map(|&v| v.max(0.0)).collect(),
        )
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Mask(mask) = entry else {
            panic!("ReLU backward without a matching forward tape entry")
        };
        assert_eq!(grad_out.len(), mask.len(), "gradient/mask length mismatch");
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// SplitMix64 — the stateless hash behind dropout's per-element masks.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at evaluation
/// time it is the identity. The paper's networks use `p = 0.25` after the
/// second conv block (`Dropout2d-6`) and `p = 0.5` before the classifier
/// (`Dropout1d-13`).
///
/// The mask is not drawn from a stateful RNG: element `e` of global batch
/// row `r` keeps or drops based on a SplitMix64 hash of
/// `(layer seed ⊕ tape salt, global element index)`. The layer therefore
/// stays stateless (`forward` is `&self`), and a batch shard covering rows
/// `[o, o+k)` reproduces exactly the mask an unsharded pass would apply to
/// those rows — the property the deterministic data-parallel engine
/// relies on.
pub struct Dropout {
    p: f32,
    seed: u64,
    /// Display name distinguishing the paper's `Dropout2d` / `Dropout1d`
    /// positions (behaviour is element-wise either way, as in the
    /// listings where both act on already-shaped tensors).
    display: &'static str,
}

impl Dropout {
    /// Element-wise dropout labeled `Dropout1d` in summaries.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Dropout {
            p,
            seed,
            display: "Dropout1d",
        }
    }

    /// Element-wise dropout labeled `Dropout2d` in summaries.
    pub fn new_2d(p: f32, seed: u64) -> Dropout {
        Dropout {
            display: "Dropout2d",
            ..Dropout::new(p, seed)
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        self.display
    }

    fn forward(&self, input: &Tensor, train: bool, tape: &mut Tape) -> Tensor {
        if !train || self.p == 0.0 {
            // Empty mask = identity pass.
            tape.push(TapeEntry::ScaleMask(Vec::new()));
            return input.clone();
        }
        let n = input.batch().max(1);
        let per_sample = input.len() / n;
        let keep = 1.0 - self.p;
        let stream = splitmix64(self.seed ^ tape.salt);
        let mut mask = Vec::with_capacity(input.len());
        for row in 0..n {
            let row_base = ((tape.sample_offset + row) * per_sample) as u64;
            for j in 0..per_sample {
                let h = splitmix64(stream ^ (row_base + j as u64));
                // Top 24 bits → uniform in [0, 1).
                let u = (h >> 40) as f32 * (1.0 / 16_777_216.0);
                mask.push(if u < self.p { 0.0 } else { 1.0 / keep });
            }
        }
        let out = Tensor::new(
            &input.shape,
            input.data.iter().zip(&mask).map(|(&v, &m)| v * m).collect(),
        );
        tape.push(TapeEntry::ScaleMask(mask));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        // Dropout is forced to eval on the predict path: identity.
        input.clone()
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::ScaleMask(mask) = entry else {
            panic!("Dropout backward without a matching forward tape entry")
        };
        if mask.is_empty() {
            return grad_out.clone();
        }
        assert_eq!(grad_out.len(), mask.len(), "gradient/mask length mismatch");
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(mask)
                .map(|(&g, &m)| g * m)
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// Flattens `[N, …]` to `[N, prod(…)]`, recording the input shape for the
/// backward reshape.
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        tape.push(TapeEntry::Shape(input.shape.clone()));
        let n = input.batch();
        let rest = input.len() / n.max(1);
        input.reshaped(&[n, rest])
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        let n = input.batch();
        let rest = input.len() / n.max(1);
        input.reshaped(&[n, rest])
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Shape(shape) = entry else {
            panic!("Flatten backward without a matching forward tape entry")
        };
        grad_out.reshaped(shape)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1..].iter().product()]
    }
}

/// Identity layer — the masking device of the paper's App. C: dropping a
/// layer from an architecture variant replaces it with `Identity` so the
/// printed summaries stay aligned across variants (`Identity-6 < masked`).
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Identity {
        Identity
    }
}

impl Default for Identity {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Identity {
    fn name(&self) -> &'static str {
        "Identity"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        tape.push(TapeEntry::Empty);
        input.clone()
    }

    fn backward(&self, _entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        grad_out.clone()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let relu = ReLU::new();
        let x = Tensor::new(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let mut tape = Tape::new();
        let y = relu.forward(&x, true, &mut tape);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(
            &tape.entries[0],
            &Tensor::new(&[1, 4], vec![1.0; 4]),
            &mut [],
        );
        assert_eq!(g.data, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::new(&[1, 100], (0..100).map(|i| i as f32).collect());
        assert_eq!(d.forward(&x, false, &mut Tape::new()), x);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::new(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true, &mut Tape::new());
        let zeros = y.data.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "dropped {frac}");
        // Survivors scaled to 2.0; expectation preserved.
        assert!(y.data.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean = y.data.iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let d = Dropout::new(0.3, 2);
        let x = Tensor::new(&[1, 64], vec![1.0; 64]);
        let mut tape = Tape::new();
        let y = d.forward(&x, true, &mut tape);
        let g = d.backward(
            &tape.entries[0],
            &Tensor::new(&[1, 64], vec![1.0; 64]),
            &mut [],
        );
        assert_eq!(y.data, g.data);
    }

    #[test]
    fn dropout_masks_vary_with_salt_not_with_sharding() {
        let d = Dropout::new(0.5, 3);
        let x = Tensor::new(&[4, 8], vec![1.0; 32]);
        // Same salt → identical masks; different salt → different masks.
        let a = d.forward(&x, true, &mut Tape::with_context(1, 0));
        let b = d.forward(&x, true, &mut Tape::with_context(1, 0));
        let c = d.forward(&x, true, &mut Tape::with_context(2, 0));
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
        // A shard holding rows 2..4 sees exactly the full batch's rows 2..4.
        let lower = Tensor::new(&[2, 8], x.data[16..].to_vec());
        let shard = d.forward(&lower, true, &mut Tape::with_context(1, 2));
        assert_eq!(shard.data, &a.data[16..]);
    }

    #[test]
    fn dropout_names() {
        assert_eq!(Dropout::new(0.5, 0).name(), "Dropout1d");
        assert_eq!(Dropout::new_2d(0.25, 0).name(), "Dropout2d");
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn flatten_round_trip() {
        let f = Flatten::new();
        let x = Tensor::kaiming_uniform(&[2, 3, 4, 4], 1, 3);
        let mut tape = Tape::new();
        let y = f.forward(&x, true, &mut tape);
        assert_eq!(y.shape, vec![2, 48]);
        let g = f.backward(&tape.entries[0], &y, &mut []);
        assert_eq!(g.shape, x.shape);
        assert_eq!(g.data, x.data);
    }

    #[test]
    fn identity_is_transparent() {
        let id = Identity::new();
        let x = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut tape = Tape::new();
        assert_eq!(id.forward(&x, true, &mut tape), x);
        assert_eq!(id.backward(&tape.entries[0], &x, &mut []), x);
        assert_eq!(id.param_count(), 0);
    }
}

/// Hyperbolic tangent — the activation of the *original* LeNet-5, and one
/// of the deviations the replication found in the Ref-Paper's public
/// repository ("the network architecture used significantly differs …
/// e.g. different activation functions", its App. D).
pub struct Tanh;

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Tanh {
        Tanh
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        let out = self.forward_eval(input);
        tape.push(TapeEntry::Output(out.clone()));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        Tensor::new(&input.shape, input.data.iter().map(|&v| v.tanh()).collect())
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Output(output) = entry else {
            panic!("Tanh backward without a matching forward tape entry")
        };
        assert_eq!(
            grad_out.len(),
            output.len(),
            "gradient/output length mismatch"
        );
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(&output.data)
                .map(|(&g, &y)| g * (1.0 - y * y))
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// Logistic sigmoid.
pub struct Sigmoid;

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Sigmoid {
        Sigmoid
    }
}

impl Default for Sigmoid {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        let out = self.forward_eval(input);
        tape.push(TapeEntry::Output(out.clone()));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        Tensor::new(
            &input.shape,
            input
                .data
                .iter()
                .map(|&v| 1.0 / (1.0 + (-v).exp()))
                .collect(),
        )
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, _grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Output(output) = entry else {
            panic!("Sigmoid backward without a matching forward tape entry")
        };
        assert_eq!(
            grad_out.len(),
            output.len(),
            "gradient/output length mismatch"
        );
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(&output.data)
                .map(|(&g, &y)| g * y * (1.0 - y))
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod activation_tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn tanh_values_and_range() {
        let t = Tanh::new();
        let y = t.forward(
            &Tensor::new(&[1, 3], vec![-10.0, 0.0, 10.0]),
            false,
            &mut Tape::new(),
        );
        assert!((y.data[0] + 1.0).abs() < 1e-4);
        assert_eq!(y.data[1], 0.0);
        assert!((y.data[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn tanh_gradients_match_finite_differences() {
        let mut t = Tanh::new();
        let x = Tensor::kaiming_uniform(&[2, 6], 1, 13);
        check_layer(&mut t, &x, 1e-2);
    }

    #[test]
    fn sigmoid_values_and_range() {
        let s = Sigmoid::new();
        let y = s.forward(
            &Tensor::new(&[1, 3], vec![-10.0, 0.0, 10.0]),
            false,
            &mut Tape::new(),
        );
        assert!(y.data[0] < 1e-4);
        assert!((y.data[1] - 0.5).abs() < 1e-7);
        assert!(y.data[2] > 1.0 - 1e-4);
    }

    #[test]
    fn sigmoid_gradients_match_finite_differences() {
        let mut s = Sigmoid::new();
        let x = Tensor::kaiming_uniform(&[2, 6], 1, 17);
        check_layer(&mut s, &x, 1e-2);
    }
}
