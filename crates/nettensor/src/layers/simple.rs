//! Parameter-free layers: ReLU, Dropout, Flatten, Identity.

use super::Layer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Rectified linear unit.
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// Creates a ReLU.
    pub fn new() -> ReLU {
        ReLU { mask: Vec::new() }
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = input.data.iter().map(|&v| v > 0.0).collect();
        Tensor::new(&input.shape, input.data.iter().map(|&v| v.max(0.0)).collect())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at evaluation
/// time it is the identity. The paper's networks use `p = 0.25` after the
/// second conv block (`Dropout2d-6`) and `p = 0.5` before the classifier
/// (`Dropout1d-13`).
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Vec<f32>,
    /// Display name distinguishing the paper's `Dropout2d` / `Dropout1d`
    /// positions (behaviour is element-wise either way, as in the
    /// listings where both act on already-shaped tensors).
    display: &'static str,
}

impl Dropout {
    /// Element-wise dropout labeled `Dropout1d` in summaries.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: Vec::new(), display: "Dropout1d" }
    }

    /// Element-wise dropout labeled `Dropout2d` in summaries.
    pub fn new_2d(p: f32, seed: u64) -> Dropout {
        Dropout { display: "Dropout2d", ..Dropout::new(p, seed) }
    }

    /// Reseeds the internal RNG (used when replaying an experiment).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        self.display
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.p;
        self.mask = (0..input.len())
            .map(|_| if self.rng.random::<f32>() < self.p { 0.0 } else { 1.0 / keep })
            .collect();
        Tensor::new(
            &input.shape,
            input.data.iter().zip(&self.mask).map(|(&v, &m)| v * m).collect(),
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        Tensor::new(
            &grad_out.shape,
            grad_out.data.iter().zip(&self.mask).map(|(&g, &m)| g * m).collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// Flattens `[N, …]` to `[N, prod(…)]`, caching the input shape for the
/// backward reshape.
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten { input_shape: Vec::new() }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.input_shape = input.shape.clone();
        let n = input.batch();
        let rest = input.len() / n.max(1);
        input.reshaped(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshaped(&self.input_shape)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1..].iter().product()]
    }
}

/// Identity layer — the masking device of the paper's App. C: dropping a
/// layer from an architecture variant replaces it with `Identity` so the
/// printed summaries stay aligned across variants (`Identity-6 < masked`).
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Identity {
        Identity
    }
}

impl Default for Identity {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Identity {
    fn name(&self) -> &'static str {
        "Identity"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = ReLU::new();
        let x = Tensor::new(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Tensor::new(&[1, 4], vec![1.0; 4]));
        assert_eq!(g.data, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::new(&[1, 100], (0..100).map(|i| i as f32).collect());
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::new(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let zeros = y.data.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "dropped {frac}");
        // Survivors scaled to 2.0; expectation preserved.
        assert!(y.data.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean = y.data.iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::new(&[1, 64], vec![1.0; 64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::new(&[1, 64], vec![1.0; 64]));
        assert_eq!(y.data, g.data);
    }

    #[test]
    fn dropout_names() {
        assert_eq!(Dropout::new(0.5, 0).name(), "Dropout1d");
        assert_eq!(Dropout::new_2d(0.25, 0).name(), "Dropout2d");
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::kaiming_uniform(&[2, 3, 4, 4], 1, 3);
        let y = f.forward(&x, true);
        assert_eq!(y.shape, vec![2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape, x.shape);
        assert_eq!(g.data, x.data);
    }

    #[test]
    fn identity_is_transparent() {
        let mut id = Identity::new();
        let x = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(id.forward(&x, true), x);
        assert_eq!(id.backward(&x), x);
        assert_eq!(id.param_count(), 0);
    }
}

/// Hyperbolic tangent — the activation of the *original* LeNet-5, and one
/// of the deviations the replication found in the Ref-Paper's public
/// repository ("the network architecture used significantly differs …
/// e.g. different activation functions", its App. D).
pub struct Tanh {
    output: Vec<f32>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Tanh {
        Tanh { output: Vec::new() }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.output = input.data.iter().map(|&v| v.tanh()).collect();
        Tensor::new(&input.shape, self.output.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.output.len(), "backward before forward");
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(&self.output)
                .map(|(&g, &y)| g * (1.0 - y * y))
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// Logistic sigmoid.
pub struct Sigmoid {
    output: Vec<f32>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Sigmoid {
        Sigmoid { output: Vec::new() }
    }
}

impl Default for Sigmoid {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.output = input.data.iter().map(|&v| 1.0 / (1.0 + (-v).exp())).collect();
        Tensor::new(&input.shape, self.output.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.output.len(), "backward before forward");
        Tensor::new(
            &grad_out.shape,
            grad_out
                .data
                .iter()
                .zip(&self.output)
                .map(|(&g, &y)| g * y * (1.0 - y))
                .collect(),
        )
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod activation_tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn tanh_values_and_range() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::new(&[1, 3], vec![-10.0, 0.0, 10.0]), false);
        assert!((y.data[0] + 1.0).abs() < 1e-4);
        assert_eq!(y.data[1], 0.0);
        assert!((y.data[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn tanh_gradients_match_finite_differences() {
        let mut t = Tanh::new();
        let x = Tensor::kaiming_uniform(&[2, 6], 1, 13);
        check_layer(&mut t, &x, 1e-2);
    }

    #[test]
    fn sigmoid_values_and_range() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::new(&[1, 3], vec![-10.0, 0.0, 10.0]), false);
        assert!(y.data[0] < 1e-4);
        assert!((y.data[1] - 0.5).abs() < 1e-7);
        assert!(y.data[2] > 1.0 - 1e-4);
    }

    #[test]
    fn sigmoid_gradients_match_finite_differences() {
        let mut s = Sigmoid::new();
        let x = Tensor::kaiming_uniform(&[2, 6], 1, 17);
        check_layer(&mut s, &x, 1e-2);
    }
}
