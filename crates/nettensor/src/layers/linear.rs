//! Fully-connected layer.

use super::Layer;
use crate::gemm;
use crate::tape::{Tape, TapeEntry};
use crate::tensor::Tensor;

/// `Linear(in_features, out_features)`: `y = x·W + b` with `W` stored
/// `[in, out]` so the forward pass is a single row-major matmul.
pub struct Linear {
    in_features: usize,
    out_features: usize,
    w: Tensor,
    b: Tensor,
    /// Armed by [`Layer::prepare_int8_eval`]: weights quantized
    /// per-output-feature and stored *transposed* (`[out, in]`) so the
    /// int8 eval lane runs contiguous dot products.
    int8: Option<gemm::Int8Weights>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform initialization.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Linear {
        Linear {
            in_features,
            out_features,
            w: Tensor::kaiming_uniform(&[in_features, out_features], in_features, seed),
            b: Tensor::kaiming_uniform(&[out_features], in_features, seed.wrapping_add(1)),
            int8: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Int8 eval lane: each row of `x` gets its own symmetric scale,
    /// each output feature its own weight scale (computed once by
    /// `prepare_int8_eval`); the product accumulates in i32 and
    /// dequantizes into f32 before the bias.
    fn forward_int8(&self, input: &Tensor, q: &gemm::Int8Weights) -> Tensor {
        let (n, f, out_f) = (input.shape[0], self.in_features, self.out_features);
        let mut out = vec![0f32; n * out_f];
        let mut xq = Vec::new();
        for ni in 0..n {
            let row = &input.data[ni * f..(ni + 1) * f];
            let orow = &mut out[ni * out_f..(ni + 1) * out_f];
            let sx = gemm::max_abs(row) / 127.0;
            if sx == 0.0 {
                orow.copy_from_slice(&self.b.data);
                continue;
            }
            gemm::quantize_i8(row, sx, &mut xq);
            for (j, o) in orow.iter_mut().enumerate() {
                let acc = gemm::dot_i8(&xq, q.row(j));
                *o = acc as f32 * (sx * q.scale[j]) + self.b.data[j];
            }
        }
        Tensor::new(&[n, out_f], out)
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn forward(&self, input: &Tensor, _train: bool, tape: &mut Tape) -> Tensor {
        assert_eq!(
            input.shape.len(),
            2,
            "Linear expects [N, F], got {:?}",
            input.shape
        );
        assert_eq!(input.shape[1], self.in_features, "feature width mismatch");
        let mut out = input.matmul(&self.w);
        out.add_row_bias(&self.b);
        tape.push(TapeEntry::Input(input.clone()));
        out
    }

    fn forward_eval(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape.len(),
            2,
            "Linear expects [N, F], got {:?}",
            input.shape
        );
        assert_eq!(input.shape[1], self.in_features, "feature width mismatch");
        if let Some(q) = &self.int8 {
            return self.forward_int8(input, q);
        }
        let mut out = input.matmul(&self.w);
        out.add_row_bias(&self.b);
        out
    }

    fn backward(&self, entry: &TapeEntry, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        let TapeEntry::Input(input) = entry else {
            panic!("Linear backward without a matching forward tape entry")
        };
        assert_eq!(grad_out.shape, vec![input.shape[0], self.out_features]);
        let [gw, gb] = grads else {
            panic!("Linear expects 2 gradient slots")
        };
        // dW = xᵀ·g, db = column sums of g, dx = g·Wᵀ.
        gw.add_scaled(&input.transposed().matmul(grad_out), 1.0);
        for row in grad_out.data.chunks(self.out_features) {
            for (gbi, g) in gb.data.iter_mut().zip(row) {
                *gbi += g;
            }
        }
        grad_out.matmul(&self.w.transposed())
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], self.out_features]
    }

    fn prepare_int8_eval(&mut self) {
        // `w` is stored [in, out]; quantize the transpose so each
        // output feature is a contiguous, individually-scaled row.
        let wt = gemm::transpose(&self.w.data, self.in_features, self.out_features);
        self.int8 = Some(gemm::Int8Weights::per_channel(&wt, self.out_features));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn lenet_param_counts() {
        // Paper Listing 1: Linear-9 400→120 = 48 120 params; Linear-11
        // 120→84 = 10 164; Linear-14 84→5 = 425.
        assert_eq!(Linear::new(400, 120, 0).param_count(), 48_120);
        assert_eq!(Linear::new(120, 84, 0).param_count(), 10_164);
        assert_eq!(Linear::new(84, 5, 0).param_count(), 425);
    }

    #[test]
    fn known_forward_value() {
        let mut lin = Linear::new(2, 2, 0);
        lin.params_mut()[0].data = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]] (in×out)
        lin.params_mut()[1].data = vec![0.5, -0.5];
        let x = Tensor::new(&[1, 2], vec![1.0, 1.0]);
        let y = lin.forward(&x, false, &mut Tape::new());
        assert_eq!(y.data, vec![4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut lin = Linear::new(4, 3, 11);
        let input = Tensor::kaiming_uniform(&[3, 4], 1, 9);
        check_layer(&mut lin, &input, 1e-2);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let lin = Linear::new(2, 1, 0);
        let x = Tensor::new(&[1, 2], vec![1.0, 2.0]);
        let g = Tensor::new(&[1, 1], vec![1.0]);
        let mut tape = Tape::new();
        lin.forward(&x, true, &mut tape);
        let mut grads: Vec<Tensor> = lin
            .params()
            .iter()
            .map(|p| Tensor::zeros(&p.shape))
            .collect();
        lin.backward(&tape.entries[0], &g, &mut grads);
        let first = grads[0].data.clone();
        lin.backward(&tape.entries[0], &g, &mut grads);
        for (a, b) in grads[0].data.iter().zip(&first) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn int8_eval_lane_tracks_the_exact_lane() {
        let mut lin = Linear::new(40, 7, 11);
        let input = Tensor::kaiming_uniform(&[5, 40], 1, 9);
        let exact = lin.forward_eval(&input);
        lin.prepare_int8_eval();
        let quant = lin.forward_eval(&input);
        assert_eq!(quant.shape, exact.shape);
        let scale = exact.data.iter().fold(0f32, |m, v| m.max(v.abs()));
        for (&q, &e) in quant.data.iter().zip(&exact.data) {
            assert!((q - e).abs() <= 0.05 * (scale + 1.0), "{q} vs {e}");
        }
        // Training forward ignores the armed int8 state.
        let taped = lin.forward(&input, true, &mut Tape::new());
        assert_eq!(taped.data, exact.data);
        // A zero row passes the bias through exactly.
        let z = lin.forward_eval(&Tensor::zeros(&[1, 40]));
        assert_eq!(z.data, lin.params()[1].data);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn rejects_wrong_width() {
        let lin = Linear::new(4, 3, 0);
        lin.forward(&Tensor::zeros(&[2, 5]), false, &mut Tape::new());
    }
}
