//! # nettensor — a minimal CPU deep-learning library
//!
//! The Ref-Paper trains small LeNet-5-style CNNs with PyTorch; this crate
//! provides the exact subset of a deep-learning framework those models
//! need, implemented from scratch with explicit layer-wise forward and
//! backward passes:
//!
//! * [`tensor`] — a dense row-major `f32` tensor with the handful of ops
//!   the layers use (matmul, transpose, broadcasting add);
//! * [`layers`] — `Conv2d`, `MaxPool2d`, `Linear`, `ReLU`, `Dropout`,
//!   `Flatten` and `Identity`. `Identity` exists for the same reason as in
//!   the replication's App. C: architecture variants (with/without
//!   dropout, masked projection heads) are expressed by *masking* layers
//!   with `Identity` rather than rebuilding the network;
//! * [`tape`] — the parameter/activation split: layers hold **only
//!   parameters**, while everything a backward pass needs (inputs, masks,
//!   argmaxes, batch statistics) is recorded per forward call on an
//!   explicit [`tape::Tape`], and gradients accumulate into a caller-owned
//!   [`tape::GradStore`]. Models are therefore `Sync`: many threads can
//!   run forward/backward over one model concurrently;
//! * [`model`] — the `Sequential` container, parameter (de)serialization,
//!   and a `torchsummary`-style printout mirroring the paper's Listings
//!   1–5;
//! * [`engine`] — [`engine::BatchEngine`], a deterministic data-parallel
//!   executor: mini-batches are split into fixed-size shards computed by a
//!   scoped thread pool, and per-shard gradients are reduced in shard
//!   order so every result is bit-identical for any worker count;
//! * [`sparse`] — CSR indexing and density probes behind the
//!   sparsity-aware `Conv2d`/`MaxPool2d` fast paths: flowpic inputs are
//!   mostly zeros, so the kernels skip zero cells while staying
//!   bit-identical to the dense loops;
//! * [`loss`] — cross-entropy, mean-squared error (for the Rezaei & Liu
//!   regression pre-training) and the NT-Xent/InfoNCE contrastive loss of
//!   SimCLR, each with its analytic gradient;
//! * [`optim`] — SGD (with momentum) and Adam, stepping a model's
//!   parameters from an externally accumulated `GradStore`, with
//!   exportable state ([`optim::OptimizerState`]) for checkpointing;
//! * [`checkpoint`] — versioned, checksummed, atomically-written training
//!   snapshots ([`checkpoint::Checkpoint`]): weights + optimizer state +
//!   counters + a config fingerprint, round-tripping bit-exactly so a
//!   killed run resumes to the same final weights as an uninterrupted one.
//!
//! Gradients are verified against finite differences in every layer's
//! tests; the library is deliberately eager and allocation-simple — the
//! workloads are small CNNs where clarity wins. Parallelism happens at two
//! levels: the experiment campaigns fan runs out across processes of a
//! thread pool, and within a run the `BatchEngine` shards each mini-batch.
//!
//! ## Example
//!
//! ```
//! use nettensor::model::Sequential;
//! use nettensor::layers::{Linear, ReLU};
//! use nettensor::loss::cross_entropy;
//! use nettensor::optim::{Optimizer, Sgd};
//! use nettensor::tape::Tape;
//! use nettensor::tensor::Tensor;
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, 1)),
//!     Box::new(ReLU::new()),
//!     Box::new(Linear::new(16, 3, 2)),
//! ]);
//! let x = Tensor::zeros(&[8, 4]);
//! let labels = vec![0usize; 8];
//!
//! let mut tape = Tape::new();                  // per-call activation state
//! let logits = net.forward(&x, true, &mut tape);
//! let (loss, grad) = cross_entropy(&logits, &labels);
//! let mut grads = net.grad_store();            // caller-owned gradients
//! net.backward(&tape, &grad, &mut grads);
//! Sgd::new(0.01).step(&mut net, &grads);
//! assert!(loss > 0.0);
//! ```
//!
//! Or sharded across threads with bit-identical results at any worker
//! count:
//!
//! ```
//! use nettensor::engine::BatchEngine;
//! use nettensor::layers::Linear;
//! use nettensor::model::Sequential;
//! use nettensor::tensor::Tensor;
//!
//! let net = Sequential::new(vec![Box::new(Linear::new(4, 2, 1))]);
//! let x = Tensor::kaiming_uniform(&[16, 4], 1, 7);
//! let (out_1, _) = BatchEngine::new(1).forward(&net, &x, false, 0);
//! let (out_4, _) = BatchEngine::new(4).forward(&net, &x, false, 0);
//! assert_eq!(out_1.data, out_4.data);
//! ```

pub mod checkpoint;
pub mod engine;
pub mod gemm;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod sparse;
pub mod tape;
pub mod tensor;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use engine::BatchEngine;
pub use model::Sequential;
pub use tape::{GradStore, Tape};
pub use tensor::Tensor;
