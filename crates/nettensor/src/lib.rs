//! # nettensor — a minimal CPU deep-learning library
//!
//! The Ref-Paper trains small LeNet-5-style CNNs with PyTorch; this crate
//! provides the exact subset of a deep-learning framework those models
//! need, implemented from scratch with explicit layer-wise forward and
//! backward passes:
//!
//! * [`tensor`] — a dense row-major `f32` tensor with the handful of ops
//!   the layers use (matmul, transpose, broadcasting add);
//! * [`layers`] — `Conv2d`, `MaxPool2d`, `Linear`, `ReLU`, `Dropout`,
//!   `Flatten` and `Identity`. `Identity` exists for the same reason as in
//!   the replication's App. C: architecture variants (with/without
//!   dropout, masked projection heads) are expressed by *masking* layers
//!   with `Identity` rather than rebuilding the network;
//! * [`model`] — the `Sequential` container, parameter (de)serialization,
//!   and a `torchsummary`-style printout mirroring the paper's Listings
//!   1–5;
//! * [`loss`] — cross-entropy, mean-squared error (for the Rezaei & Liu
//!   regression pre-training) and the NT-Xent/InfoNCE contrastive loss of
//!   SimCLR, each with its analytic gradient;
//! * [`optim`] — SGD (with momentum) and Adam.
//!
//! Gradients are verified against finite differences in every layer's
//! tests; the library is deliberately eager, single-threaded and
//! allocation-simple — the workloads are small CNNs where clarity wins,
//! and the experiment campaigns parallelize at the run level instead.
//!
//! ## Example
//!
//! ```
//! use nettensor::model::Sequential;
//! use nettensor::layers::{Linear, ReLU};
//! use nettensor::loss::cross_entropy;
//! use nettensor::optim::{Optimizer, Sgd};
//! use nettensor::tensor::Tensor;
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, 1)),
//!     Box::new(ReLU::new()),
//!     Box::new(Linear::new(16, 3, 2)),
//! ]);
//! let x = Tensor::zeros(&[8, 4]);
//! let labels = vec![0usize; 8];
//! let logits = net.forward(&x, true);
//! let (loss, grad) = cross_entropy(&logits, &labels);
//! net.backward(&grad);
//! Sgd::new(0.01).step(&mut net);
//! assert!(loss > 0.0);
//! ```

pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod tensor;

pub use model::Sequential;
pub use tensor::Tensor;
