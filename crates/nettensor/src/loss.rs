//! Loss functions with analytic gradients.
//!
//! * [`cross_entropy`] — softmax cross-entropy for supervised
//!   classification and fine-tuning;
//! * [`mse`] — mean squared error for the Rezaei & Liu statistical-
//!   regression pre-training (paper App. D.3);
//! * [`NtXent`] — the normalized-temperature cross-entropy (InfoNCE) loss
//!   of SimCLR, including the contrastive top-5 accuracy the paper uses as
//!   its pre-training early-stopping metric.

use crate::tensor::Tensor;

/// Softmax cross-entropy. Returns `(mean loss, dL/dlogits)`.
///
/// `logits` is `[N, C]`; `labels[i] < C`. The softmax subtracts the row
/// max for numerical stability.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape.len(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape[0], logits.shape[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut grad = Tensor::zeros(&[n, c]);
    let mut loss = 0f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range {c}");
        let row = &logits.data[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::MIN, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let log_sum = sum.ln() + max;
        loss += log_sum - row[label];
        for (j, &e) in exps.iter().enumerate() {
            let p = e / sum;
            grad.data[i * c + j] = (p - f32::from(j == label)) / n as f32;
        }
    }
    (loss / n as f32, grad)
}

/// Classification accuracy of `logits` against `labels` (argmax match).
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (n, c) = (logits.shape[0], logits.shape[1]);
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap();
        if pred == label {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

/// Predicted class indices (row-wise argmax).
pub fn predictions(logits: &Tensor) -> Vec<usize> {
    let (n, c) = (logits.shape[0], logits.shape[1]);
    (0..n)
        .map(|i| {
            logits.data[i * c..(i + 1) * c]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap()
        })
        .collect()
}

/// Mean squared error. Returns `(mean loss, dL/dpred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape, target.shape, "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Tensor::zeros(&pred.shape);
    let mut loss = 0f32;
    for i in 0..pred.len() {
        let d = pred.data[i] - target.data[i];
        loss += d * d;
        grad.data[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// The SimCLR NT-Xent (InfoNCE) contrastive loss.
///
/// Embeddings are `[2N, D]` with rows `i` and `i + N` forming a positive
/// pair (first `N` rows are view A, last `N` view B). Rows are
/// L2-normalized internally; similarities are cosine divided by the
/// `temperature` (the paper uses 0.07).
pub struct NtXent {
    /// Softmax temperature.
    pub temperature: f32,
}

/// Output of an NT-Xent evaluation.
pub struct NtXentOutput {
    /// Mean contrastive loss over all `2N` anchors.
    pub loss: f32,
    /// Gradient with respect to the (unnormalized) embeddings.
    pub grad: Tensor,
    /// Fraction of anchors whose positive ranks in the top-1 similarities.
    pub top1_accuracy: f64,
    /// Fraction of anchors whose positive ranks in the top-5 — the
    /// paper's SimCLR early-stopping metric.
    pub top5_accuracy: f64,
}

impl NtXent {
    /// Creates the loss with the given temperature.
    pub fn new(temperature: f32) -> NtXent {
        assert!(temperature > 0.0);
        NtXent { temperature }
    }

    /// Evaluates loss, gradient and contrastive accuracies for a batch of
    /// paired embeddings.
    pub fn eval(&self, z: &Tensor) -> NtXentOutput {
        assert_eq!(z.shape.len(), 2, "embeddings must be [2N, D]");
        let (m, d) = (z.shape[0], z.shape[1]);
        assert!(
            m >= 4 && m % 2 == 0,
            "need an even number (>=4) of embeddings, got {m}"
        );
        let n = m / 2;
        let positive = |i: usize| if i < n { i + n } else { i - n };

        // L2-normalize rows.
        let eps = 1e-12f32;
        let mut norms = vec![0f32; m];
        let mut u = vec![0f32; m * d];
        for i in 0..m {
            let row = &z.data[i * d..(i + 1) * d];
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(eps);
            norms[i] = norm;
            for j in 0..d {
                u[i * d + j] = row[j] / norm;
            }
        }

        // Similarity matrix s[i][k] = u_i·u_k / τ (diagonal unused).
        let mut s = vec![0f32; m * m];
        for i in 0..m {
            for k in (i + 1)..m {
                let dot: f32 = u[i * d..(i + 1) * d]
                    .iter()
                    .zip(&u[k * d..(k + 1) * d])
                    .map(|(a, b)| a * b)
                    .sum();
                let v = dot / self.temperature;
                s[i * m + k] = v;
                s[k * m + i] = v;
            }
        }

        // Per-anchor softmax over k≠i, loss, ranks and dL/ds.
        let mut g_s = vec![0f32; m * m];
        let mut loss = 0f32;
        let mut top1 = 0usize;
        let mut top5 = 0usize;
        for i in 0..m {
            let p_i = positive(i);
            let row = &s[i * m..(i + 1) * m];
            let max = (0..m)
                .filter(|&k| k != i)
                .map(|k| row[k])
                .fold(f32::MIN, f32::max);
            let mut sum = 0f32;
            for (k, &v) in row.iter().enumerate() {
                if k != i {
                    sum += (v - max).exp();
                }
            }
            loss += sum.ln() + max - row[p_i];
            // Rank of the positive: how many negatives beat it.
            let beaten = (0..m)
                .filter(|&k| k != i && k != p_i && row[k] > row[p_i])
                .count();
            if beaten == 0 {
                top1 += 1;
            }
            if beaten < 5 {
                top5 += 1;
            }
            for k in 0..m {
                if k == i {
                    continue;
                }
                let p = (row[k] - max).exp() / sum;
                g_s[i * m + k] = (p - f32::from(k == p_i)) / m as f32;
            }
        }
        loss /= m as f32;

        // dL/du_i = (1/τ) Σ_{k≠i} (g_s[i,k] + g_s[k,i]) u_k.
        let mut g_u = vec![0f32; m * d];
        for i in 0..m {
            for k in 0..m {
                if k == i {
                    continue;
                }
                let coeff = (g_s[i * m + k] + g_s[k * m + i]) / self.temperature;
                if coeff == 0.0 {
                    continue;
                }
                for j in 0..d {
                    g_u[i * d + j] += coeff * u[k * d + j];
                }
            }
        }

        // Back through the normalization: dL/dz_i = (g_u - (g_u·u)u)/||z||.
        let mut grad = Tensor::zeros(&[m, d]);
        for i in 0..m {
            let gu = &g_u[i * d..(i + 1) * d];
            let ui = &u[i * d..(i + 1) * d];
            let dot: f32 = gu.iter().zip(ui).map(|(a, b)| a * b).sum();
            for j in 0..d {
                grad.data[i * d + j] = (gu[j] - dot * ui[j]) / norms[i];
            }
        }

        NtXentOutput {
            loss,
            grad,
            top1_accuracy: top1 as f64 / m as f64,
            top5_accuracy: top5 as f64 / m as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_logits_do_not_panic_and_argmax_is_deterministic() {
        // Regression for the partial_cmp(..).unwrap() panic: a NaN logit
        // (diverged training, bad input) must neither crash accuracy nor
        // predictions. Under total_cmp, NaN ranks above every real number,
        // so the NaN column deterministically wins its row.
        let logits = Tensor::new(
            &[3, 3],
            vec![
                1.0,
                f32::NAN,
                0.5, // NaN wins → pred 1
                0.2,
                0.1,
                0.9, // clean row → pred 2
                f32::NAN,
                f32::NAN,
                f32::NAN, // all equal (NaN) → max_by keeps the last
            ],
        );
        let preds = predictions(&logits);
        assert_eq!(preds, vec![1, 2, 2]);
        assert_eq!(preds, predictions(&logits), "must be reproducible");
        let acc = accuracy(&logits, &[1, 2, 2]);
        assert!((acc - 1.0).abs() < 1e-12);
        let acc = accuracy(&logits, &[0, 2, 1]);
        assert!((acc - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, grad) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.data[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_has_low_loss() {
        let logits = Tensor::new(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Tensor::new(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data[i] += eps;
            let mut minus = logits.clone();
            minus.data[i] -= eps;
            let numeric =
                (cross_entropy(&plus, &labels).0 - cross_entropy(&minus, &labels).0) / (2.0 * eps);
            assert!(
                (grad.data[i] - numeric).abs() < 1e-3,
                "[{i}] {} vs {numeric}",
                grad.data[i]
            );
        }
    }

    #[test]
    fn accuracy_and_predictions() {
        let logits = Tensor::new(&[3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]);
        assert_eq!(predictions(&logits), vec![0, 1, 0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }

    #[test]
    fn mse_value_and_gradient() {
        let pred = Tensor::new(&[2], vec![1.0, 3.0]);
        let target = Tensor::new(&[2], vec![0.0, 1.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.data, vec![1.0, 2.0]); // 2d/n
    }

    #[test]
    fn ntxent_loss_decreases_when_pairs_align() {
        let loss_fn = NtXent::new(0.5);
        // Aligned pairs: rows i and i+N identical, pairs orthogonal.
        let aligned = Tensor::new(&[4, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        // Misaligned: positives orthogonal, negatives identical.
        let misaligned = Tensor::new(&[4, 2], vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let a = loss_fn.eval(&aligned);
        let b = loss_fn.eval(&misaligned);
        assert!(
            a.loss < b.loss,
            "aligned {} vs misaligned {}",
            a.loss,
            b.loss
        );
        assert_eq!(a.top1_accuracy, 1.0);
        assert!(b.top1_accuracy < 1.0);
    }

    #[test]
    fn ntxent_gradient_matches_finite_differences() {
        let loss_fn = NtXent::new(0.3);
        let z = Tensor::new(
            &[6, 3],
            vec![
                0.5, -0.2, 0.8, //
                -0.3, 0.9, 0.1, //
                0.7, 0.7, -0.4, //
                0.6, -0.1, 0.9, //
                -0.2, 1.0, 0.2, //
                0.5, 0.8, -0.5,
            ],
        );
        let out = loss_fn.eval(&z);
        let eps = 1e-2f32;
        for i in 0..z.len() {
            let mut plus = z.clone();
            plus.data[i] += eps;
            let mut minus = z.clone();
            minus.data[i] -= eps;
            let numeric = (loss_fn.eval(&plus).loss - loss_fn.eval(&minus).loss) / (2.0 * eps);
            assert!(
                (out.grad.data[i] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "[{i}] analytic {} vs numeric {numeric}",
                out.grad.data[i]
            );
        }
    }

    #[test]
    fn ntxent_handles_zero_rows() {
        let loss_fn = NtXent::new(0.07);
        let mut z = Tensor::kaiming_uniform(&[8, 4], 1, 3);
        for j in 0..4 {
            z.data[j] = 0.0; // first row all zero
        }
        let out = loss_fn.eval(&z);
        assert!(out.loss.is_finite());
        assert!(out.grad.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ntxent_top5_with_small_batch() {
        let loss_fn = NtXent::new(0.07);
        let z = Tensor::kaiming_uniform(&[6, 8], 1, 5);
        let out = loss_fn.eval(&z);
        // With 4 negatives per anchor, top-5 is always 1.
        assert_eq!(out.top5_accuracy, 1.0);
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn ntxent_rejects_odd_batch() {
        NtXent::new(0.07).eval(&Tensor::zeros(&[5, 2]));
    }
}

/// The SupCon (supervised contrastive, Khosla et al. 2020) loss — the
/// extension the replication names as future work in its conclusions
/// ("such a study should consider … *supervised* contrastive learning
/// methods such as SupCon").
///
/// Unlike NT-Xent, positives are *all other samples of the same class*,
/// not just the augmented twin: with labels available, the latent space
/// is pulled together class-wise during pre-training. Uses the
/// `L_out` formulation (mean over positives outside the log).
pub struct SupCon {
    /// Softmax temperature.
    pub temperature: f32,
}

/// Output of a SupCon evaluation.
pub struct SupConOutput {
    /// Mean loss over anchors that have at least one positive.
    pub loss: f32,
    /// Gradient with respect to the (unnormalized) embeddings.
    pub grad: Tensor,
}

impl SupCon {
    /// Creates the loss with the given temperature.
    pub fn new(temperature: f32) -> SupCon {
        assert!(temperature > 0.0);
        SupCon { temperature }
    }

    /// Evaluates loss and gradient for embeddings `z` (`[M, D]`) with
    /// per-row labels. Anchors without positives contribute nothing.
    pub fn eval(&self, z: &Tensor, labels: &[usize]) -> SupConOutput {
        assert_eq!(z.shape.len(), 2, "embeddings must be [M, D]");
        let (m, d) = (z.shape[0], z.shape[1]);
        assert_eq!(labels.len(), m, "one label per embedding");
        assert!(m >= 2, "need at least two embeddings");

        // Normalize rows.
        let eps = 1e-12f32;
        let mut norms = vec![0f32; m];
        let mut u = vec![0f32; m * d];
        for i in 0..m {
            let row = &z.data[i * d..(i + 1) * d];
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(eps);
            norms[i] = norm;
            for j in 0..d {
                u[i * d + j] = row[j] / norm;
            }
        }

        // Similarities.
        let mut s = vec![0f32; m * m];
        for i in 0..m {
            for k in (i + 1)..m {
                let dot: f32 = u[i * d..(i + 1) * d]
                    .iter()
                    .zip(&u[k * d..(k + 1) * d])
                    .map(|(a, b)| a * b)
                    .sum();
                let v = dot / self.temperature;
                s[i * m + k] = v;
                s[k * m + i] = v;
            }
        }

        // Loss and dL/ds.
        let mut g_s = vec![0f32; m * m];
        let mut loss = 0f32;
        let mut anchors = 0usize;
        for i in 0..m {
            let positives: Vec<usize> = (0..m)
                .filter(|&p| p != i && labels[p] == labels[i])
                .collect();
            if positives.is_empty() {
                continue;
            }
            anchors += 1;
            let row = &s[i * m..(i + 1) * m];
            let max = (0..m)
                .filter(|&k| k != i)
                .map(|k| row[k])
                .fold(f32::MIN, f32::max);
            let mut sum = 0f32;
            for (k, &v) in row.iter().enumerate() {
                if k != i {
                    sum += (v - max).exp();
                }
            }
            let log_denom = sum.ln() + max;
            let np = positives.len() as f32;
            for &p in &positives {
                loss += (log_denom - row[p]) / np;
            }
            for k in 0..m {
                if k == i {
                    continue;
                }
                let softmax = (row[k] - max).exp() / sum;
                let is_pos = f32::from(labels[k] == labels[i]);
                g_s[i * m + k] = softmax - is_pos / np;
            }
        }
        let anchors = anchors.max(1);
        loss /= anchors as f32;
        for g in &mut g_s {
            *g /= anchors as f32;
        }

        // dL/du then back through the normalization (same as NT-Xent).
        let mut g_u = vec![0f32; m * d];
        for i in 0..m {
            for k in 0..m {
                if k == i {
                    continue;
                }
                let coeff = (g_s[i * m + k] + g_s[k * m + i]) / self.temperature;
                if coeff == 0.0 {
                    continue;
                }
                for j in 0..d {
                    g_u[i * d + j] += coeff * u[k * d + j];
                }
            }
        }
        let mut grad = Tensor::zeros(&[m, d]);
        for i in 0..m {
            let gu = &g_u[i * d..(i + 1) * d];
            let ui = &u[i * d..(i + 1) * d];
            let dot: f32 = gu.iter().zip(ui).map(|(a, b)| a * b).sum();
            for j in 0..d {
                grad.data[i * d + j] = (gu[j] - dot * ui[j]) / norms[i];
            }
        }
        SupConOutput { loss, grad }
    }
}

#[cfg(test)]
mod supcon_tests {
    use super::*;

    #[test]
    fn supcon_prefers_class_clusters() {
        let loss_fn = SupCon::new(0.5);
        // Two classes clustered: low loss.
        let clustered = Tensor::new(&[4, 2], vec![1.0, 0.0, 1.0, 0.1, 0.0, 1.0, 0.1, 1.0]);
        // Classes interleaved in space: high loss.
        let mixed = Tensor::new(&[4, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.1, 0.1, 1.0]);
        let labels = [0usize, 0, 1, 1];
        let a = loss_fn.eval(&clustered, &labels);
        let b = loss_fn.eval(&mixed, &labels);
        assert!(a.loss < b.loss, "clustered {} vs mixed {}", a.loss, b.loss);
    }

    #[test]
    fn supcon_gradient_matches_finite_differences() {
        let loss_fn = SupCon::new(0.3);
        let z = Tensor::new(
            &[5, 3],
            vec![
                0.5, -0.2, 0.8, //
                -0.3, 0.9, 0.1, //
                0.7, 0.7, -0.4, //
                0.6, -0.1, 0.9, //
                -0.2, 1.0, 0.2,
            ],
        );
        let labels = [0usize, 1, 0, 1, 2];
        let out = loss_fn.eval(&z, &labels);
        let eps = 1e-2f32;
        for i in 0..z.len() {
            let mut plus = z.clone();
            plus.data[i] += eps;
            let mut minus = z.clone();
            minus.data[i] -= eps;
            let numeric = (loss_fn.eval(&plus, &labels).loss - loss_fn.eval(&minus, &labels).loss)
                / (2.0 * eps);
            assert!(
                (out.grad.data[i] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "[{i}] analytic {} vs numeric {numeric}",
                out.grad.data[i]
            );
        }
    }

    #[test]
    fn anchors_without_positives_are_skipped() {
        let loss_fn = SupCon::new(0.07);
        // Every label unique: no positives anywhere → zero loss and grad.
        let z = Tensor::kaiming_uniform(&[4, 3], 1, 7);
        let out = loss_fn.eval(&z, &[0, 1, 2, 3]);
        assert_eq!(out.loss, 0.0);
        assert!(out.grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "one label per embedding")]
    fn supcon_rejects_label_mismatch() {
        SupCon::new(0.07).eval(&Tensor::zeros(&[4, 2]), &[0, 1]);
    }
}
