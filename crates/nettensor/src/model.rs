//! The `Sequential` model container.
//!
//! Provides forward/backward over a layer stack (activation state on a
//! caller-owned [`Tape`], gradients into a caller-owned [`GradStore`]),
//! parameter access for the optimizers, weight (de)serialization, layer
//! surgery (the paper's fine-tuning freezes a pre-trained feature
//! extractor and swaps the projection head for a fresh classifier) and a
//! `torchsummary`-style printout that mirrors the paper's App. C
//! listings.
//!
//! Because layers hold parameters only, `Sequential` is `Sync`: shared
//! references can run forward/backward concurrently (each call with its
//! own tape), which is what [`crate::engine::BatchEngine`] exploits.

use crate::checkpoint::CheckpointError;
use crate::layers::Layer;
use crate::tape::{GradStore, Tape};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// FNV-1a fingerprint of a parameter *shape* signature: tensor count
/// followed by each tensor's length, independent of the float values.
/// Two models share an architecture fingerprint iff their parameter
/// tensors line up slot-by-slot — the compatibility check behind
/// [`Sequential::try_import_weights`] and the serving model registry.
fn arch_fingerprint_of(lens: impl ExactSizeIterator<Item = usize>) -> u64 {
    let mut bytes = Vec::with_capacity((lens.len() + 1) * 8);
    bytes.extend_from_slice(&(lens.len() as u64).to_le_bytes());
    for len in lens {
        bytes.extend_from_slice(&(len as u64).to_le_bytes());
    }
    crate::checkpoint::fnv1a64(&bytes)
}

/// A sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Number of leading layers whose parameters are frozen (excluded from
    /// `trainable_params*` and therefore untouched by optimizers).
    /// Fine-tuning sets this to the feature-extractor depth.
    frozen_prefix: usize,
}

/// Serialized weights of a model: one flat `f32` vector per parameter
/// tensor, in layer order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Parameter tensors in [`Sequential::all_params`] order.
    pub tensors: Vec<Vec<f32>>,
}

impl Weights {
    /// FNV-1a fingerprint over the exact parameter bits — two weight sets
    /// fingerprint equal iff every float is bit-identical. Used by resume
    /// tests and checkpoint diagnostics.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for t in &self.tensors {
            bytes.extend_from_slice(&(t.len() as u64).to_le_bytes());
            for v in t {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        crate::checkpoint::fnv1a64(&bytes)
    }

    /// Shape-only architecture fingerprint (see [`Sequential::arch_fingerprint`]).
    pub fn arch_fingerprint(&self) -> u64 {
        arch_fingerprint_of(self.tensors.iter().map(|t| t.len()))
    }
}

impl Sequential {
    /// Builds a model from a layer stack.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Sequential {
        Sequential {
            layers,
            frozen_prefix: 0,
        }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Shared access to layer `i`.
    pub fn layer(&self, i: usize) -> &dyn Layer {
        self.layers[i].as_ref()
    }

    /// Whether any layer couples samples within a batch in training mode
    /// (batch norm). Such a model computes different statistics per batch
    /// shard, so [`crate::engine::BatchEngine`] refuses to train it
    /// sharded.
    pub fn batch_coupled(&self) -> bool {
        self.layers.iter().any(|l| l.batch_coupled())
    }

    /// Sets the sparsity-dispatch threshold on every layer (see
    /// [`Layer::set_sparsity_threshold`]). Sparse and dense kernels are
    /// bit-identical, so this never changes results — `0.0` forces the
    /// dense loops everywhere, which benchmarks and the dense-vs-sparse
    /// tests use as the reference path.
    pub fn set_sparsity_threshold(&mut self, threshold: f32) {
        for layer in &mut self.layers {
            layer.set_sparsity_threshold(threshold);
        }
    }

    /// Enables/disables the im2col+GEMM dense-regime kernels on every
    /// layer that has them (see [`Layer::set_gemm`]). Off by default;
    /// enabling trades the eval lane's bit-identity for blocked
    /// accumulation (tolerance contract).
    pub fn set_gemm(&mut self, enabled: bool) {
        for layer in &mut self.layers {
            layer.set_gemm(enabled);
        }
    }

    /// Arms the int8-quantized eval lane on every layer that has one
    /// (see [`Layer::prepare_int8_eval`]): weight quantization happens
    /// here, once; activations quantize per sample inside `predict`.
    /// Training and the exact eval lane of other models are untouched.
    pub fn prepare_int8_eval(&mut self) {
        for layer in &mut self.layers {
            layer.prepare_int8_eval();
        }
    }

    /// Forward pass through every layer, recording one tape entry per
    /// layer. `train` toggles training-only behaviour (dropout, batch
    /// statistics).
    pub fn forward(&self, input: &Tensor, train: bool, tape: &mut Tape) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x, train, tape);
        }
        x
    }

    /// Evaluation-mode forward with a throwaway tape — the convenience
    /// entry point for inference and metric evaluation.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.forward(input, false, &mut Tape::new())
    }

    /// Tape-free inference fast path: every layer runs its
    /// [`Layer::forward_eval`], so nothing is cloned or recorded for a
    /// backward pass and dropout is forced to identity. Bit-identical to
    /// [`Sequential::infer`] by construction (the eval paths share the
    /// forward arithmetic), just without the bookkeeping.
    pub fn predict(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward_eval(&x);
        }
        x
    }

    /// Shape-only architecture fingerprint: FNV-1a over the parameter
    /// tensor count and per-tensor lengths. Matches
    /// [`Weights::arch_fingerprint`] of any weight set this model can
    /// import. Value-independent: training changes
    /// [`Weights::fingerprint`] but never this.
    pub fn arch_fingerprint(&self) -> u64 {
        arch_fingerprint_of(self.all_params().iter().map(|p| p.data.len()))
    }

    /// Evaluation-mode forward through only the first `n_layers` layers —
    /// used to read intermediate representations (e.g. the latent
    /// `h = f(x)` of the paper's extractor) without mutating the
    /// architecture.
    pub fn forward_prefix(&self, input: &Tensor, n_layers: usize) -> Tensor {
        assert!(n_layers <= self.layers.len());
        let mut tape = Tape::new();
        let mut x = input.clone();
        for layer in self.layers.iter().take(n_layers) {
            x = layer.forward(&x, false, &mut tape);
        }
        x
    }

    /// Backward pass through every layer (reverse order), reading the
    /// tape written by the matching [`Sequential::forward`]. Parameter
    /// gradients accumulate into `grads` (one slot per tensor of
    /// [`Sequential::all_params`] — frozen layers included, so slot
    /// indices are stable across freezing). Returns `dL/d(input)`.
    pub fn backward(&self, tape: &Tape, grad_out: &Tensor, grads: &mut GradStore) -> Tensor {
        assert_eq!(
            tape.len(),
            self.layers.len(),
            "tape does not match this model's forward"
        );
        assert_eq!(
            grads.len(),
            self.all_params().len(),
            "grad store does not match this model"
        );
        let mut slot_end = grads.len();
        let mut g = grad_out.clone();
        for (layer, entry) in self.layers.iter().zip(&tape.entries).rev() {
            let n_slots = layer.params().len();
            let slot_start = slot_end - n_slots;
            g = layer.backward(entry, &g, &mut grads.slots_mut()[slot_start..slot_end]);
            slot_end = slot_start;
        }
        g
    }

    /// Applies deferred layer-state updates recorded on `tape` (batch
    /// norm running statistics). Call once per training forward, after
    /// the (potentially parallel) backward; the engine commits shard
    /// tapes in fixed shard order.
    pub fn commit(&mut self, tape: &Tape) {
        assert_eq!(
            tape.len(),
            self.layers.len(),
            "tape does not match this model's forward"
        );
        for (layer, entry) in self.layers.iter_mut().zip(&tape.entries) {
            layer.commit(entry);
        }
    }

    /// A zero [`GradStore`] shaped like this model's parameters.
    pub fn grad_store(&self) -> GradStore {
        GradStore::zeros_like(&self.all_params())
    }

    /// Every parameter tensor, frozen layers included, in layer order.
    /// This is the canonical slot order shared by [`GradStore`],
    /// [`Weights`] and optimizer state.
    pub fn all_params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable access to every parameter tensor, frozen included.
    pub fn all_params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Trainable (non-frozen) parameter tensors.
    pub fn trainable_params(&self) -> Vec<&Tensor> {
        self.layers
            .iter()
            .skip(self.frozen_prefix)
            .flat_map(|l| l.params())
            .collect()
    }

    /// Trainable parameter tensors with their global slot index (the
    /// index into [`Sequential::all_params`] / [`GradStore`] slots) —
    /// what optimizers iterate.
    pub fn trainable_params_mut(&mut self) -> Vec<(usize, &mut Tensor)> {
        let frozen = self.frozen_prefix;
        let mut slot = 0;
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for p in layer.params_mut() {
                if i >= frozen {
                    out.push((slot, p));
                }
                slot += 1;
            }
        }
        out
    }

    /// Total trainable parameter count (frozen layers excluded).
    pub fn trainable_param_count(&self) -> usize {
        self.layers
            .iter()
            .skip(self.frozen_prefix)
            .map(|l| l.param_count())
            .sum()
    }

    /// Total parameter count, frozen included.
    pub fn total_param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Freezes the first `n` layers: their parameters disappear from the
    /// `trainable_params*` views so optimizers skip them — the paper's
    /// "freezing the pre-trained representation" during fine-tuning.
    pub fn freeze_prefix(&mut self, n: usize) {
        assert!(n <= self.layers.len());
        self.frozen_prefix = n;
    }

    /// Number of frozen leading layers.
    pub fn frozen_prefix(&self) -> usize {
        self.frozen_prefix
    }

    /// Replaces the layers from index `from` onward with `tail` — the
    /// fine-tuning surgery that swaps a projection head for a classifier.
    pub fn replace_tail(&mut self, from: usize, tail: Vec<Box<dyn Layer>>) {
        assert!(from <= self.layers.len());
        self.layers.truncate(from);
        self.layers.extend(tail);
    }

    /// Snapshots all weights (frozen included), for persistence or for
    /// transplanting a pre-trained extractor into a new head. Read-only:
    /// safe to call while other threads evaluate the same model.
    pub fn export_weights(&self) -> Weights {
        Weights {
            tensors: self.all_params().iter().map(|p| p.data.clone()).collect(),
        }
    }

    /// Restores weights exported by [`Sequential::export_weights`] from a
    /// model with identical architecture. Panics on shape mismatch.
    pub fn import_weights(&mut self, weights: &Weights) {
        let mut params = self.all_params_mut();
        assert_eq!(
            params.len(),
            weights.tensors.len(),
            "weight tensor count mismatch"
        );
        for (p, w) in params.iter_mut().zip(&weights.tensors) {
            assert_eq!(p.data.len(), w.len(), "weight tensor length mismatch");
            p.data.copy_from_slice(w);
        }
    }

    /// Fallible [`Sequential::import_weights`]: checks the architecture
    /// fingerprints first and returns
    /// [`CheckpointError::ArchMismatch`] instead of panicking when the
    /// weight set was exported from a different architecture — the error
    /// callers hit when resuming from or serving a checkpoint of the
    /// wrong network.
    pub fn try_import_weights(&mut self, weights: &Weights) -> Result<(), CheckpointError> {
        let expected = self.arch_fingerprint();
        let found = weights.arch_fingerprint();
        if expected != found {
            return Err(CheckpointError::ArchMismatch { expected, found });
        }
        self.import_weights(weights);
        Ok(())
    }

    /// Copies the weights of the first `n` layers from `source` (same
    /// architecture prefix required). Used to transplant the SimCLR
    /// feature extractor into the fine-tune network.
    pub fn copy_prefix_weights_from(&mut self, source: &Sequential, n: usize) {
        assert!(n <= self.layers.len() && n <= source.layers.len());
        for i in 0..n {
            let src = source.layers[i].params();
            let mut dst = self.layers[i].params_mut();
            assert_eq!(src.len(), dst.len(), "layer {i} param count mismatch");
            for (d, s) in dst.iter_mut().zip(&src) {
                assert_eq!(d.data.len(), s.data.len(), "layer {i} param shape mismatch");
                d.data.copy_from_slice(&s.data);
            }
        }
    }

    /// `torchsummary`-style listing (paper App. C): one row per layer with
    /// the output shape for the given input shape and the parameter count.
    pub fn summary(&self, input_shape: &[usize]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<20} {:>10}\n",
            "Layer (type)", "Output Shape", "Param #"
        ));
        out.push_str(&"=".repeat(50));
        out.push('\n');
        let mut shape = input_shape.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            shape = layer.output_shape(&shape);
            let disp: Vec<String> = std::iter::once("-1".to_string())
                .chain(shape[1..].iter().map(|d| d.to_string()))
                .collect();
            out.push_str(&format!(
                "{:<18} {:<20} {:>10}\n",
                format!("{}-{}", layer.name(), i + 1),
                format!("[{}]", disp.join(", ")),
                layer.param_count()
            ));
        }
        out.push_str(&"=".repeat(50));
        out.push('\n');
        out.push_str(&format!("Total params: {}\n", self.total_param_count()));
        out.push_str(&format!(
            "Trainable params: {}\n",
            self.trainable_param_count()
        ));
        out.push_str(&format!(
            "Non-trainable params: {}\n",
            self.total_param_count() - self.trainable_param_count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Identity, Linear, ReLU};

    fn two_layer() -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, 1)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(8, 2, 2)),
        ])
    }

    #[test]
    fn sequential_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Sequential>();
    }

    #[test]
    fn forward_backward_shapes() {
        let net = two_layer();
        let x = Tensor::kaiming_uniform(&[5, 4], 1, 0);
        let mut tape = Tape::new();
        let y = net.forward(&x, true, &mut tape);
        assert_eq!(y.shape, vec![5, 2]);
        let mut grads = net.grad_store();
        let g = net.backward(&tape, &Tensor::zeros(&[5, 2]), &mut grads);
        assert_eq!(g.shape, vec![5, 4]);
        assert_eq!(grads.len(), 4);
    }

    #[test]
    fn forward_prefix_matches_full_forward_composition() {
        let net = two_layer();
        let x = Tensor::kaiming_uniform(&[2, 4], 1, 8);
        let h = net.forward_prefix(&x, 2);
        assert_eq!(h.shape, vec![2, 8]);
        // Prefix of all layers == full forward.
        let full_via_prefix = net.forward_prefix(&x, 3);
        let full = net.infer(&x);
        assert_eq!(full_via_prefix.data, full.data);
        // Zero-layer prefix is the identity.
        assert_eq!(net.forward_prefix(&x, 0), x);
    }

    #[test]
    fn param_counts() {
        let net = two_layer();
        assert_eq!(net.total_param_count(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.trainable_param_count(), net.total_param_count());
    }

    #[test]
    fn freezing_hides_params_but_keeps_slots() {
        let mut net = two_layer();
        net.freeze_prefix(2); // freeze first Linear (+ ReLU)
        assert_eq!(net.trainable_param_count(), 8 * 2 + 2);
        assert_eq!(net.trainable_params().len(), 2); // only last Linear's w and b
                                                     // Slot indices stay global: the trainable tensors are slots 2, 3.
        let slots: Vec<usize> = net.trainable_params_mut().iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, vec![2, 3]);
        assert_eq!(net.all_params().len(), 4);
    }

    #[test]
    fn export_import_round_trip() {
        let a = two_layer();
        let mut b = two_layer();
        let x = Tensor::kaiming_uniform(&[3, 4], 1, 9);
        // Different seeds => different outputs.
        let wa = a.export_weights();
        b.import_weights(&wa);
        assert_eq!(a.infer(&x).data, b.infer(&x).data);
    }

    #[test]
    fn export_includes_frozen_layers() {
        let mut net = two_layer();
        net.freeze_prefix(2);
        let w = net.export_weights();
        assert_eq!(w.tensors.len(), 4); // both Linear layers' w and b
        assert_eq!(net.frozen_prefix(), 2); // untouched by export
    }

    #[test]
    fn export_while_frozen_under_concurrent_eval() {
        // export_weights no longer mutates freeze state, so a frozen
        // model can be snapshot while another thread evaluates it.
        let mut net = two_layer();
        net.freeze_prefix(2);
        let x = Tensor::kaiming_uniform(&[3, 4], 1, 2);
        let expected = net.infer(&x);
        let (w, y) = std::thread::scope(|s| {
            let net_ref = &net;
            let x_ref = &x;
            let eval = s.spawn(move || net_ref.infer(x_ref));
            let w = net_ref.export_weights();
            (w, eval.join().expect("concurrent eval panicked"))
        });
        assert_eq!(w.tensors.len(), 4);
        assert_eq!(y.data, expected.data);
        assert_eq!(net.frozen_prefix(), 2);
    }

    #[test]
    fn copy_prefix_weights() {
        let src = two_layer();
        let mut dst = two_layer();
        dst.copy_prefix_weights_from(&src, 1);
        let x = Tensor::kaiming_uniform(&[2, 4], 1, 5);
        // First layers now agree: outputs of the first layer match.
        let ya = src.layer(0).forward(&x, false, &mut Tape::new());
        let yb = dst.layer(0).forward(&x, false, &mut Tape::new());
        assert_eq!(ya.data, yb.data);
    }

    #[test]
    fn replace_tail_changes_head() {
        let mut net = two_layer();
        net.replace_tail(2, vec![Box::new(Linear::new(8, 10, 7))]);
        assert_eq!(net.len(), 3);
        let x = Tensor::kaiming_uniform(&[1, 4], 1, 0);
        assert_eq!(net.infer(&x).shape, vec![1, 10]);
    }

    #[test]
    fn summary_mirrors_torchsummary() {
        let mut net = two_layer();
        net.replace_tail(3, vec![Box::new(Identity::new())]);
        let s = net.summary(&[1, 4]);
        assert!(s.contains("Linear-1"), "{s}");
        assert!(s.contains("ReLU-2"), "{s}");
        assert!(s.contains("Identity-4"), "{s}");
        assert!(s.contains("Total params:"), "{s}");
    }

    #[test]
    #[should_panic(expected = "does not match this model")]
    fn backward_rejects_foreign_tape() {
        let net = two_layer();
        let mut grads = net.grad_store();
        net.backward(&Tape::new(), &Tensor::zeros(&[1, 2]), &mut grads);
    }

    #[test]
    fn batch_coupled_detects_batchnorm() {
        use crate::layers::BatchNorm1d;
        assert!(!two_layer().batch_coupled());
        let bn_net = Sequential::new(vec![
            Box::new(Linear::new(4, 8, 1)),
            Box::new(BatchNorm1d::new(8)),
        ]);
        assert!(bn_net.batch_coupled());
    }

    #[test]
    fn predict_matches_infer_bitwise() {
        use crate::layers::{Conv2d, Dropout, Flatten, MaxPool2d, Sigmoid, Tanh};
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 3, 3, 4)),
            Box::new(Tanh::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Dropout::new(0.5, 9)),
            Box::new(Linear::new(3 * 3 * 3, 4, 5)),
            Box::new(Sigmoid::new()),
        ]);
        let x = Tensor::kaiming_uniform(&[3, 1, 8, 8], 1, 11);
        assert_eq!(net.predict(&x).data, net.infer(&x).data);
    }

    #[test]
    fn int8_predict_is_close_and_batch_grouping_invariant() {
        use crate::engine::BatchEngine;
        use crate::layers::{Conv2d, Flatten, MaxPool2d, Tanh};
        let build = || {
            Sequential::new(vec![
                Box::new(Conv2d::new(1, 3, 3, 4)) as Box<dyn Layer>,
                Box::new(Tanh::new()),
                Box::new(MaxPool2d::new(2)),
                Box::new(Flatten::new()),
                Box::new(Linear::new(3 * 3 * 3, 4, 5)),
            ])
        };
        let exact = build();
        let mut quant = build();
        quant.prepare_int8_eval();
        let x = Tensor::kaiming_uniform(&[6, 1, 8, 8], 1, 11);
        let ye = exact.predict(&x);
        let yq = quant.predict(&x);
        let scale = ye.data.iter().fold(0f32, |m, v| m.max(v.abs()));
        for (&q, &e) in yq.data.iter().zip(&ye.data) {
            assert!((q - e).abs() <= 0.08 * (scale + 1.0), "{q} vs {e}");
        }
        // Per-sample activation scales: the quant lane stays
        // bit-identical across shard groupings and worker counts.
        let sharded = BatchEngine::with_shard_size(3, 2).predict(&quant, &x);
        assert_eq!(sharded.data, yq.data);
        // And one-at-a-time equals the full batch, bitwise.
        for i in 0..6 {
            let single = quant.predict(&x.rows(i, i + 1));
            assert_eq!(single.data, yq.data[i * 4..(i + 1) * 4]);
        }
    }

    #[test]
    fn arch_fingerprint_shape_only() {
        let a = two_layer();
        let mut b = two_layer();
        // Same shapes, different values → same arch fingerprint.
        assert_eq!(a.arch_fingerprint(), b.arch_fingerprint());
        assert_eq!(a.arch_fingerprint(), a.export_weights().arch_fingerprint());
        for p in b.all_params_mut() {
            p.data.iter_mut().for_each(|v| *v += 1.0);
        }
        assert_eq!(a.arch_fingerprint(), b.arch_fingerprint());
        // Different architecture → different fingerprint.
        let c = Sequential::new(vec![Box::new(Linear::new(4, 9, 1))]);
        assert_ne!(a.arch_fingerprint(), c.arch_fingerprint());
    }

    #[test]
    fn try_import_weights_rejects_mismatch() {
        use crate::checkpoint::CheckpointError;
        let mut net = two_layer();
        let wrong = Sequential::new(vec![Box::new(Linear::new(4, 9, 1))]).export_weights();
        match net.try_import_weights(&wrong) {
            Err(CheckpointError::ArchMismatch { expected, found }) => {
                assert_eq!(expected, net.arch_fingerprint());
                assert_eq!(found, wrong.arch_fingerprint());
            }
            other => panic!("expected ArchMismatch, got {other:?}"),
        }
        // Matching weights import fine.
        let good = two_layer().export_weights();
        net.try_import_weights(&good).expect("matching arch");
        assert_eq!(net.export_weights(), good);
    }

    #[test]
    fn weight_fingerprint_tracks_bits() {
        let net = two_layer();
        let mut w = net.export_weights();
        let fp = w.fingerprint();
        assert_eq!(fp, net.export_weights().fingerprint(), "deterministic");
        w.tensors[0][0] = f32::from_bits(w.tensors[0][0].to_bits() ^ 1);
        assert_ne!(fp, w.fingerprint(), "one flipped bit changes it");
    }
}
