//! The `Sequential` model container.
//!
//! Provides forward/backward over a layer stack, parameter access for the
//! optimizers, weight (de)serialization, layer surgery (the paper's
//! fine-tuning freezes a pre-trained feature extractor and swaps the
//! projection head for a fresh classifier) and a `torchsummary`-style
//! printout that mirrors the paper's App. C listings.

use crate::layers::{Layer, ParamRef};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Number of leading layers whose parameters are frozen (excluded from
    /// `params()` and therefore untouched by optimizers). Fine-tuning sets
    /// this to the feature-extractor depth.
    frozen_prefix: usize,
}

/// Serialized weights of a model: one flat `f32` vector per parameter
/// tensor, in layer order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Weights {
    /// Parameter tensors in `params()` order.
    pub tensors: Vec<Vec<f32>>,
}

impl Sequential {
    /// Builds a model from a layer stack.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Sequential {
        Sequential { layers, frozen_prefix: 0 }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass through every layer.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Forward pass through only the first `n_layers` layers — used to
    /// read intermediate representations (e.g. the latent `h = f(x)` of
    /// the paper's extractor) without mutating the architecture.
    pub fn forward_prefix(&mut self, input: &Tensor, n_layers: usize, train: bool) -> Tensor {
        assert!(n_layers <= self.layers.len());
        let mut x = input.clone();
        for layer in self.layers.iter_mut().take(n_layers) {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass through every layer (reverse order). Frozen layers
    /// still propagate gradients but their parameters are not exposed to
    /// optimizers.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// `(parameter, gradient)` pairs of all *trainable* (non-frozen)
    /// layers, in layer order.
    pub fn params(&mut self) -> Vec<ParamRef<'_>> {
        let frozen = self.frozen_prefix;
        self.layers
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| *i >= frozen)
            .flat_map(|(_, l)| l.params())
            .collect()
    }

    /// Zeroes all gradients (frozen layers included, for hygiene).
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total trainable parameter count (frozen layers excluded).
    pub fn trainable_param_count(&self) -> usize {
        self.layers.iter().skip(self.frozen_prefix).map(|l| l.param_count()).sum()
    }

    /// Total parameter count, frozen included.
    pub fn total_param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Freezes the first `n` layers: their parameters disappear from
    /// [`Sequential::params`] so optimizers skip them — the paper's
    /// "freezing the pre-trained representation" during fine-tuning.
    pub fn freeze_prefix(&mut self, n: usize) {
        assert!(n <= self.layers.len());
        self.frozen_prefix = n;
    }

    /// Number of frozen leading layers.
    pub fn frozen_prefix(&self) -> usize {
        self.frozen_prefix
    }

    /// Replaces the layers from index `from` onward with `tail` — the
    /// fine-tuning surgery that swaps a projection head for a classifier.
    pub fn replace_tail(&mut self, from: usize, tail: Vec<Box<dyn Layer>>) {
        assert!(from <= self.layers.len());
        self.layers.truncate(from);
        self.layers.extend(tail);
    }

    /// Snapshots all weights (frozen included), for persistence or for
    /// transplanting a pre-trained extractor into a new head.
    pub fn export_weights(&mut self) -> Weights {
        let frozen = std::mem::replace(&mut self.frozen_prefix, 0);
        let tensors = self.params().iter().map(|p| p.param.data.clone()).collect();
        self.frozen_prefix = frozen;
        Weights { tensors }
    }

    /// Restores weights exported by [`Sequential::export_weights`] from a
    /// model with identical architecture. Panics on shape mismatch.
    pub fn import_weights(&mut self, weights: &Weights) {
        let frozen = std::mem::replace(&mut self.frozen_prefix, 0);
        {
            let mut params = self.params();
            assert_eq!(params.len(), weights.tensors.len(), "weight tensor count mismatch");
            for (p, w) in params.iter_mut().zip(&weights.tensors) {
                assert_eq!(p.param.data.len(), w.len(), "weight tensor length mismatch");
                p.param.data.copy_from_slice(w);
            }
        }
        self.frozen_prefix = frozen;
    }

    /// Copies the weights of the first `n` layers from `source` (same
    /// architecture prefix required). Used to transplant the SimCLR
    /// feature extractor into the fine-tune network.
    pub fn copy_prefix_weights_from(&mut self, source: &mut Sequential, n: usize) {
        assert!(n <= self.layers.len() && n <= source.layers.len());
        for i in 0..n {
            let src: Vec<Vec<f32>> =
                source.layers[i].params().iter().map(|p| p.param.data.clone()).collect();
            let mut dst = self.layers[i].params();
            assert_eq!(src.len(), dst.len(), "layer {i} param count mismatch");
            for (d, s) in dst.iter_mut().zip(&src) {
                assert_eq!(d.param.data.len(), s.len(), "layer {i} param shape mismatch");
                d.param.data.copy_from_slice(s);
            }
        }
    }

    /// `torchsummary`-style listing (paper App. C): one row per layer with
    /// the output shape for the given input shape and the parameter count.
    pub fn summary(&self, input_shape: &[usize]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<20} {:>10}\n",
            "Layer (type)", "Output Shape", "Param #"
        ));
        out.push_str(&"=".repeat(50));
        out.push('\n');
        let mut shape = input_shape.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            shape = layer.output_shape(&shape);
            let disp: Vec<String> =
                std::iter::once("-1".to_string()).chain(shape[1..].iter().map(|d| d.to_string())).collect();
            out.push_str(&format!(
                "{:<18} {:<20} {:>10}\n",
                format!("{}-{}", layer.name(), i + 1),
                format!("[{}]", disp.join(", ")),
                layer.param_count()
            ));
        }
        out.push_str(&"=".repeat(50));
        out.push('\n');
        out.push_str(&format!("Total params: {}\n", self.total_param_count()));
        out.push_str(&format!("Trainable params: {}\n", self.trainable_param_count()));
        out.push_str(&format!(
            "Non-trainable params: {}\n",
            self.total_param_count() - self.trainable_param_count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Identity, Linear, ReLU};

    fn two_layer() -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, 1)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(8, 2, 2)),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = two_layer();
        let x = Tensor::kaiming_uniform(&[5, 4], 1, 0);
        let y = net.forward(&x, true);
        assert_eq!(y.shape, vec![5, 2]);
        let g = net.backward(&Tensor::zeros(&[5, 2]));
        assert_eq!(g.shape, vec![5, 4]);
    }

    #[test]
    fn forward_prefix_matches_full_forward_composition() {
        let mut net = two_layer();
        let x = Tensor::kaiming_uniform(&[2, 4], 1, 8);
        let h = net.forward_prefix(&x, 2, false);
        assert_eq!(h.shape, vec![2, 8]);
        // Prefix of all layers == full forward.
        let full_via_prefix = net.forward_prefix(&x, 3, false);
        let full = net.forward(&x, false);
        assert_eq!(full_via_prefix.data, full.data);
        // Zero-layer prefix is the identity.
        assert_eq!(net.forward_prefix(&x, 0, false), x);
    }

    #[test]
    fn param_counts() {
        let net = two_layer();
        assert_eq!(net.total_param_count(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.trainable_param_count(), net.total_param_count());
    }

    #[test]
    fn freezing_hides_params() {
        let mut net = two_layer();
        net.freeze_prefix(2); // freeze first Linear (+ ReLU)
        assert_eq!(net.trainable_param_count(), 8 * 2 + 2);
        assert_eq!(net.params().len(), 2); // only last Linear's w and b
    }

    #[test]
    fn export_import_round_trip() {
        let mut a = two_layer();
        let mut b = two_layer();
        let x = Tensor::kaiming_uniform(&[3, 4], 1, 9);
        // Different seeds => different outputs.
        let wa = a.export_weights();
        b.import_weights(&wa);
        assert_eq!(a.forward(&x, false).data, b.forward(&x, false).data);
    }

    #[test]
    fn export_includes_frozen_layers() {
        let mut net = two_layer();
        net.freeze_prefix(2);
        let w = net.export_weights();
        assert_eq!(w.tensors.len(), 4); // both Linear layers' w and b
        assert_eq!(net.frozen_prefix(), 2); // restored after export
    }

    #[test]
    fn copy_prefix_weights() {
        let mut src = two_layer();
        let mut dst = two_layer();
        dst.copy_prefix_weights_from(&mut src, 1);
        let x = Tensor::kaiming_uniform(&[2, 4], 1, 5);
        // First layers now agree: outputs of the first layer match.
        let ya = src.layers[0].forward(&x, false);
        let yb = dst.layers[0].forward(&x, false);
        assert_eq!(ya.data, yb.data);
    }

    #[test]
    fn replace_tail_changes_head() {
        let mut net = two_layer();
        net.replace_tail(2, vec![Box::new(Linear::new(8, 10, 7))]);
        assert_eq!(net.len(), 3);
        let x = Tensor::kaiming_uniform(&[1, 4], 1, 0);
        assert_eq!(net.forward(&x, false).shape, vec![1, 10]);
    }

    #[test]
    fn summary_mirrors_torchsummary() {
        let mut net = two_layer();
        net.replace_tail(3, vec![Box::new(Identity::new())]);
        let s = net.summary(&[1, 4]);
        assert!(s.contains("Linear-1"), "{s}");
        assert!(s.contains("ReLU-2"), "{s}");
        assert!(s.contains("Identity-4"), "{s}");
        assert!(s.contains("Total params:"), "{s}");
    }
}
