//! Dense row-major `f32` tensors.
//!
//! Only the operations the layers actually use are implemented; every op
//! validates shapes with informative panics (shape bugs are programmer
//! errors, not runtime conditions).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Dimension sizes, outermost first.
    pub shape: Vec<usize>,
    /// Row-major contents, length = product of `shape`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from parts, validating the element count.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} incompatible with {} elements",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// All-zero tensor.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Kaiming-uniform initialization (the PyTorch default for conv and
    /// linear layers): `U[-b, b]` with `b = sqrt(1 / fan_in)`, seeded.
    pub fn kaiming_uniform(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (1.0 / fan_in.max(1) as f32).sqrt();
        let n = shape.iter().product();
        let data = (0..n)
            .map(|_| -bound + 2.0 * bound * rng.random::<f32>())
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// First dimension (batch size by convention).
    pub fn batch(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Returns a reshaped view (same data, new shape). Panics if the
    /// element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::new(shape, self.data.clone())
    }

    /// Matrix multiply: `self [m, k] × other [k, n] → [m, n]`.
    ///
    /// Plain ikj-loop with the inner dimension contiguous — fast enough
    /// for the ≤ few-hundred-unit matrices of the paper's networks.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.len(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.shape.len(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // flowpics are sparse; skipping zeros pays off
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::new(&[m, n], out)
    }

    /// 2-D transpose.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(
            self.shape.len(),
            2,
            "transpose needs 2-D, got {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new(&[n, m], out)
    }

    /// Adds `bias` (shape `[n]`) to every row of `self` (shape `[m, n]`).
    pub fn add_row_bias(&mut self, bias: &Tensor) {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        assert_eq!(
            bias.shape,
            vec![n],
            "bias shape {:?} vs row width {n}",
            bias.shape
        );
        for row in self.data.chunks_mut(n) {
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Element-wise `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Copies rows `[start, end)` along the first dimension into a new
    /// tensor with the same trailing shape.
    pub fn rows(&self, start: usize, end: usize) -> Tensor {
        assert!(!self.shape.is_empty(), "rows() needs at least 1-D");
        assert!(
            start <= end && end <= self.shape[0],
            "row range {start}..{end} out of bounds"
        );
        let stride: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor::new(&shape, self.data[start * stride..end * stride].to_vec())
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        let t = Tensor::new(&[2, 3], vec![1.0; 6]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.batch(), 2);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn new_rejects_bad_shape() {
        Tensor::new(&[2, 3], vec![1.0; 5]);
    }

    #[test]
    fn matmul_correctness() {
        // [2x3] × [3x2]
        let a = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape, vec![2, 2]);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_with_zeros_skips_correctly() {
        let a = Tensor::new(&[1, 3], vec![0.0, 2.0, 0.0]);
        let b = Tensor::new(&[3, 1], vec![5.0, 7.0, 9.0]);
        assert_eq!(a.matmul(&b).data, vec![14.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_mismatched_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transposed();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut a = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::new(&[2], vec![10.0, 20.0]);
        a.add_row_bias(&b);
        assert_eq!(a.data, vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let b = Tensor::new(&[3], vec![1.0, 2.0, 3.0]);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.data, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn kaiming_uniform_bounds_and_determinism() {
        let t = Tensor::kaiming_uniform(&[100], 25, 7);
        let bound = (1.0f32 / 25.0).sqrt();
        assert!(t.data.iter().all(|&v| v.abs() <= bound));
        assert_eq!(t, Tensor::kaiming_uniform(&[100], 25, 7));
        assert_ne!(t, Tensor::kaiming_uniform(&[100], 25, 8));
        // Not degenerate.
        assert!(t.data.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn rows_slices_leading_dimension() {
        let a = Tensor::new(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mid = a.rows(1, 3);
        assert_eq!(mid.shape, vec![2, 2]);
        assert_eq!(mid.data, vec![3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.rows(0, 0).shape, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rows_rejects_out_of_range() {
        Tensor::zeros(&[2, 2]).rows(1, 3);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape, vec![3, 2]);
        assert_eq!(b.data, a.data);
    }
}
