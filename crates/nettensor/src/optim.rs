//! Optimizers: SGD (with momentum) and Adam.
//!
//! The paper trains with a *static* learning rate (0.001 supervised and
//! SimCLR, 0.01 fine-tuning) — no scheduler (its App. D explicitly flags
//! the original authors' cosine-annealing repository as deviating from the
//! publication). Optimizer state is keyed by **global parameter slot**
//! (the [`Sequential::all_params`] order, frozen layers included), so
//! state stays aligned with the model even when `freeze_prefix` changes
//! between steps; a given optimizer instance must always be stepped
//! against the same model.

use crate::model::Sequential;
use crate::tape::GradStore;
use serde::{Deserialize, Serialize};

/// Serializable snapshot of an optimizer's mutable state, for
/// checkpointing. Hyper-parameters (learning rate, betas) are *not*
/// included — they are part of the training configuration, which the
/// checkpoint layer fingerprints separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerState {
    /// SGD momentum buffers (empty until the first momentum step, or
    /// always empty for plain SGD).
    Sgd {
        /// Per-slot velocity buffers.
        velocity: Vec<Vec<f32>>,
    },
    /// Adam step count and moment estimates (empty until the first step).
    Adam {
        /// Steps taken (bias-correction exponent).
        t: u64,
        /// Per-slot first-moment estimates.
        m: Vec<Vec<f32>>,
        /// Per-slot second-moment estimates.
        v: Vec<Vec<f32>>,
    },
}

/// An optimizer over a [`Sequential`] model's trainable parameters.
pub trait Optimizer {
    /// Applies one update step from the gradients accumulated in `grads`
    /// (one slot per parameter tensor, frozen included — frozen slots are
    /// skipped). The caller typically zeroes `grads` before the next
    /// accumulation.
    fn step(&mut self, model: &mut Sequential, grads: &GradStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Snapshots the mutable state (moment/velocity buffers, step count)
    /// for checkpointing.
    fn export_state(&self) -> OptimizerState;

    /// Restores state exported by [`Optimizer::export_state`]. Panics if
    /// the state belongs to a different optimizer kind.
    fn import_state(&mut self, state: OptimizerState);
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        assert!((0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Sequential, grads: &GradStore) {
        let params = model.trainable_params_mut();
        if self.momentum == 0.0 {
            for (slot, p) in params {
                for (w, g) in p.data.iter_mut().zip(&grads.slots()[slot].data) {
                    *w -= self.lr * g;
                }
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = grads.slots().iter().map(|s| vec![0f32; s.len()]).collect();
        }
        assert_eq!(
            self.velocity.len(),
            grads.len(),
            "optimizer bound to a different model"
        );
        for (slot, p) in params {
            let v = &mut self.velocity[slot];
            for ((w, g), vi) in p
                .data
                .iter_mut()
                .zip(&grads.slots()[slot].data)
                .zip(v.iter_mut())
            {
                *vi = self.momentum * *vi + g;
                *w -= self.lr * *vi;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Sgd {
            velocity: self.velocity.clone(),
        }
    }

    fn import_state(&mut self, state: OptimizerState) {
        match state {
            OptimizerState::Sgd { velocity } => self.velocity = velocity,
            other => panic!("cannot load {other:?} into an Sgd optimizer"),
        }
    }
}

/// Adam (Kingma & Ba) with PyTorch-default hyper-parameters — the
/// optimizer the Ref-Paper's training loop uses.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Sequential, grads: &GradStore) {
        if self.m.is_empty() {
            self.m = grads.slots().iter().map(|s| vec![0f32; s.len()]).collect();
            self.v = grads.slots().iter().map(|s| vec![0f32; s.len()]).collect();
        }
        assert_eq!(
            self.m.len(),
            grads.len(),
            "optimizer bound to a different model"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, p) in model.trainable_params_mut() {
            let (m, v) = (&mut self.m[slot], &mut self.v[slot]);
            for (((w, g), mi), vi) in p
                .data
                .iter_mut()
                .zip(&grads.slots()[slot].data)
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Adam {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn import_state(&mut self, state: OptimizerState) {
        match state {
            OptimizerState::Adam { t, m, v } => {
                self.t = t;
                self.m = m;
                self.v = v;
            }
            other => panic!("cannot load {other:?} into an Adam optimizer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::cross_entropy;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    fn toy_problem() -> (Sequential, Tensor, Vec<usize>) {
        // Linearly separable 2-class toy data.
        let net = Sequential::new(vec![Box::new(Linear::new(2, 2, 3))]);
        let x = Tensor::new(&[4, 2], vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9]);
        let y = vec![0usize, 0, 1, 1];
        (net, x, y)
    }

    fn train<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let (mut net, x, y) = toy_problem();
        let mut grads = net.grad_store();
        let mut last = f32::MAX;
        for _ in 0..steps {
            let mut tape = Tape::new();
            let logits = net.forward(&x, true, &mut tape);
            let (loss, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            opt.step(&mut net, &grads);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_toy_problem() {
        assert!(train(Sgd::new(0.5), 200) < 0.05);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(train(Sgd::with_momentum(0.1, 0.9), 200) < 0.05);
    }

    #[test]
    fn adam_converges() {
        assert!(train(Adam::new(0.05), 200) < 0.05);
    }

    #[test]
    fn adam_beats_vanilla_sgd_at_same_tiny_lr() {
        // Adam's per-parameter scaling makes progress at learning rates
        // where plain SGD barely moves.
        let sgd_loss = train(Sgd::new(0.001), 100);
        let adam_loss = train(Adam::new(0.05), 100);
        assert!(adam_loss < sgd_loss);
    }

    #[test]
    fn step_skips_frozen_layers() {
        let (mut net, x, y) = toy_problem();
        net.freeze_prefix(1);
        let before = net.export_weights();
        let mut tape = Tape::new();
        let logits = net.forward(&x, true, &mut tape);
        let (_, grad) = cross_entropy(&logits, &y);
        let mut grads = net.grad_store();
        net.backward(&tape, &grad, &mut grads);
        Adam::new(0.1).step(&mut net, &grads);
        let after = net.export_weights();
        assert_eq!(before.tensors, after.tensors, "frozen layer must not move");
    }

    #[test]
    fn optimizer_state_keys_survive_freeze_changes() {
        // Momentum built while the whole net trains must still apply to
        // the same tensors after a prefix is frozen mid-run.
        let net = Sequential::new(vec![
            Box::new(Linear::new(2, 3, 1)),
            Box::new(Linear::new(3, 2, 2)),
        ]);
        let mut net = net;
        let x = Tensor::new(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let y = vec![0usize, 1];
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut grads = net.grad_store();
        for step in 0..4 {
            if step == 2 {
                net.freeze_prefix(1);
            }
            let mut tape = Tape::new();
            let logits = net.forward(&x, true, &mut tape);
            let (_, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, &mut grads);
            opt.step(&mut net, &grads);
        }
        // Frozen first layer stopped moving, the head kept training.
        assert_eq!(net.frozen_prefix(), 1);
    }

    #[test]
    fn learning_rate_accessor() {
        assert_eq!(Sgd::new(0.01).learning_rate(), 0.01);
        assert_eq!(Adam::new(0.001).learning_rate(), 0.001);
    }

    /// Runs `total` steps straight through vs. `split` steps, a state
    /// export/import into a fresh optimizer, then the remainder — the
    /// final weights must be bit-identical.
    fn state_round_trip_matches<O: Optimizer, F: Fn() -> O>(make: F, split: usize, total: usize) {
        let step_once = |net: &mut Sequential, opt: &mut O, grads: &mut GradStore| {
            let (_, x, y) = toy_problem();
            let mut tape = Tape::new();
            let logits = net.forward(&x, true, &mut tape);
            let (_, grad) = cross_entropy(&logits, &y);
            grads.zero();
            net.backward(&tape, &grad, grads);
            opt.step(net, grads);
        };

        let (mut straight, _, _) = toy_problem();
        let mut opt_a = make();
        let mut grads = straight.grad_store();
        for _ in 0..total {
            step_once(&mut straight, &mut opt_a, &mut grads);
        }

        let (mut resumed, _, _) = toy_problem();
        let mut opt_b = make();
        for _ in 0..split {
            step_once(&mut resumed, &mut opt_b, &mut grads);
        }
        let state = opt_b.export_state();
        drop(opt_b);
        let mut opt_c = make();
        opt_c.import_state(state);
        for _ in split..total {
            step_once(&mut resumed, &mut opt_c, &mut grads);
        }

        let a = straight.export_weights();
        let b = resumed.export_weights();
        for (ta, tb) in a.tensors.iter().zip(&b.tensors) {
            for (x, y) in ta.iter().zip(tb) {
                assert_eq!(x.to_bits(), y.to_bits(), "resume diverged");
            }
        }
    }

    #[test]
    fn adam_state_export_import_is_bit_exact() {
        state_round_trip_matches(|| Adam::new(0.05), 3, 8);
    }

    #[test]
    fn sgd_momentum_state_export_import_is_bit_exact() {
        state_round_trip_matches(|| Sgd::with_momentum(0.1, 0.9), 3, 8);
    }

    #[test]
    #[should_panic(expected = "cannot load")]
    fn adam_rejects_sgd_state() {
        Adam::new(0.001).import_state(OptimizerState::Sgd {
            velocity: Vec::new(),
        });
    }
}
