//! Optimizers: SGD (with momentum) and Adam.
//!
//! The paper trains with a *static* learning rate (0.001 supervised and
//! SimCLR, 0.01 fine-tuning) — no scheduler (its App. D explicitly flags
//! the original authors' cosine-annealing repository as deviating from the
//! publication). Optimizer state is keyed by parameter order, so a given
//! optimizer instance must always be stepped against the same model.

use crate::model::Sequential;

/// An optimizer over a [`Sequential`] model's trainable parameters.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients, then the
    /// caller typically zeroes gradients.
    fn step(&mut self, model: &mut Sequential);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        assert!((0.0..1.0).contains(&momentum));
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Sequential) {
        let mut params = model.params();
        if self.momentum == 0.0 {
            for p in params.iter_mut() {
                for (w, g) in p.param.data.iter_mut().zip(&p.grad.data) {
                    *w -= self.lr * g;
                }
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0f32; p.param.len()]).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "optimizer bound to a different model");
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, g), vi) in p.param.data.iter_mut().zip(&p.grad.data).zip(v.iter_mut()) {
                *vi = self.momentum * *vi + g;
                *w -= self.lr * *vi;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with PyTorch-default hyper-parameters — the
/// optimizer the Ref-Paper's training loop uses.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Sequential) {
        let mut params = model.params();
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0f32; p.param.len()]).collect();
            self.v = params.iter().map(|p| vec![0f32; p.param.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "optimizer bound to a different model");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, g), mi), vi) in
                p.param.data.iter_mut().zip(&p.grad.data).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::cross_entropy;
    use crate::tensor::Tensor;

    fn toy_problem() -> (Sequential, Tensor, Vec<usize>) {
        // Linearly separable 2-class toy data.
        let net = Sequential::new(vec![Box::new(Linear::new(2, 2, 3))]);
        let x = Tensor::new(&[4, 2], vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9]);
        let y = vec![0usize, 0, 1, 1];
        (net, x, y)
    }

    fn train<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let (mut net, x, y) = toy_problem();
        let mut last = f32::MAX;
        for _ in 0..steps {
            let logits = net.forward(&x, true);
            let (loss, grad) = cross_entropy(&logits, &y);
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_toy_problem() {
        assert!(train(Sgd::new(0.5), 200) < 0.05);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(train(Sgd::with_momentum(0.1, 0.9), 200) < 0.05);
    }

    #[test]
    fn adam_converges() {
        assert!(train(Adam::new(0.05), 200) < 0.05);
    }

    #[test]
    fn adam_beats_vanilla_sgd_at_same_tiny_lr() {
        // Adam's per-parameter scaling makes progress at learning rates
        // where plain SGD barely moves.
        let sgd_loss = train(Sgd::new(0.001), 100);
        let adam_loss = train(Adam::new(0.05), 100);
        assert!(adam_loss < sgd_loss);
    }

    #[test]
    fn step_skips_frozen_layers() {
        let (mut net, x, y) = toy_problem();
        net.freeze_prefix(1);
        let before = net.export_weights();
        let logits = net.forward(&x, true);
        let (_, grad) = cross_entropy(&logits, &y);
        net.backward(&grad);
        Adam::new(0.1).step(&mut net);
        let after = net.export_weights();
        assert_eq!(before.tensors, after.tensors, "frozen layer must not move");
    }

    #[test]
    fn learning_rate_accessor() {
        assert_eq!(Sgd::new(0.01).learning_rate(), 0.01);
        assert_eq!(Adam::new(0.001).learning_rate(), 0.001);
    }
}
