//! Versioned, checksummed checkpoint persistence.
//!
//! A [`Checkpoint`] bundles everything a training loop needs to continue
//! from an epoch boundary as if it had never stopped: the model
//! [`Weights`], the optimizer's [`OptimizerState`] (Adam `m`/`v`/`t`, SGD
//! velocity), the epoch/step counters, a fingerprint of the training
//! configuration, and an arbitrary trainer payload (early stopper,
//! best-weights snapshot, running summary).
//!
//! # On-disk format
//!
//! One header line followed by a token body:
//!
//! ```text
//! tcbench-checkpoint v1 fnv1a64=<16 hex digits> len=<body bytes>\n
//! <one whitespace-separated token per primitive value>
//! ```
//!
//! The header carries a format version (mismatches are a clean
//! [`CheckpointError::VersionMismatch`], never a garbage deserialization),
//! the body length (truncation is detected before parsing) and an FNV-1a
//! checksum of the exact body bytes (corruption is a
//! [`CheckpointError::ChecksumMismatch`]).
//!
//! The body is produced by the [`Persist`] trait — a deliberately tiny
//! self-describing codec instead of a general serialization framework.
//! Floats are stored as the hex of their IEEE-754 bit pattern
//! (`f32::to_bits`), which makes the round-trip **bit-identical by
//! construction** — including NaN payloads and signed zeros — with no
//! dependence on decimal shortest-representation printing. That
//! bit-exactness is what lets a killed-and-resumed run reproduce an
//! uninterrupted one bit for bit.
//!
//! # Atomicity
//!
//! [`save`] writes to a `<path>.tmp` sibling and renames it over `path`;
//! on POSIX the rename is atomic, so a crash mid-save leaves either the
//! previous complete checkpoint or the new one — never a torn file.
//!
//! The envelope helpers ([`save_value`] / [`load_value`]) are also used
//! standalone, e.g. by campaign resume to persist per-run results with
//! the same integrity guarantees.

use crate::model::Weights;
use crate::optim::OptimizerState;
use std::fmt;
use std::io;
use std::path::Path;

/// Current checkpoint format version. Bump on any incompatible change to
/// the envelope or the encoding of any persisted type.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "tcbench-checkpoint";

/// FNV-1a 64-bit hash — the checksum used by the checkpoint envelope and
/// configuration fingerprints. Not cryptographic; it detects corruption
/// and truncation, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of any persistable configuration — trainers stamp their
/// checkpoints with it so a resume against a *different* configuration is
/// rejected instead of silently diverging.
pub fn fingerprint_config<T: Persist>(config: &T) -> u64 {
    let mut body = String::new();
    config.encode(&mut body);
    fnv1a64(body.as_bytes())
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not a checkpoint, is truncated, or the header is
    /// malformed.
    Format(String),
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The body bytes do not hash to the header checksum — the file is
    /// corrupted.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// The body failed to decode, or the checkpoint belongs to a
    /// different training configuration.
    Body(String),
    /// The weights were exported from a different model architecture
    /// (parameter tensor count or shapes differ) — e.g. resuming or
    /// serving a checkpoint of the wrong network.
    ArchMismatch {
        /// Shape fingerprint of the model doing the import.
        expected: u64,
        /// Shape fingerprint of the checkpointed weights.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(msg) => write!(f, "not a valid checkpoint: {msg}"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format v{found} is not readable by this build (expects v{expected})"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint is corrupted: checksum {computed:016x} does not match recorded {stored:016x}"
            ),
            CheckpointError::Body(msg) => write!(f, "checkpoint body rejected: {msg}"),
            CheckpointError::ArchMismatch { expected, found } => write!(
                f,
                "checkpoint architecture mismatch: model expects shape fingerprint \
                 {expected:016x}, weights carry {found:016x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Streaming token reader for [`Persist::decode`]: the body split on
/// whitespace, consumed front to back.
pub struct Decoder<'a> {
    tokens: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Decoder<'a> {
    /// A decoder over a full body string.
    pub fn new(body: &'a str) -> Decoder<'a> {
        Decoder {
            tokens: body.split_ascii_whitespace(),
        }
    }

    /// The next token, or an error if the body ran out.
    pub fn token(&mut self) -> Result<&'a str, String> {
        self.tokens
            .next()
            .ok_or_else(|| "unexpected end of checkpoint body".to_string())
    }

    /// Whether every token has been consumed.
    pub fn is_exhausted(&mut self) -> bool {
        self.tokens.clone().next().is_none()
    }
}

/// Bit-exact, whitespace-token persistence. The deliberately small codec
/// behind [`Checkpoint`]: fixed field order, no field names, versioned as
/// a whole by [`FORMAT_VERSION`]. Floats round-trip through their raw bit
/// pattern, so `encode ∘ decode` is the identity on every value,
/// including non-finite ones.
pub trait Persist: Sized {
    /// Appends this value's tokens (each terminated by whitespace).
    fn encode(&self, out: &mut String);

    /// Reads this value's tokens back, in encode order.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String>;
}

macro_rules! persist_display {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn encode(&self, out: &mut String) {
                out.push_str(&self.to_string());
                out.push('\n');
            }
            fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
                let tok = d.token()?;
                tok.parse()
                    .map_err(|e| format!("bad {} token {tok:?}: {e}", stringify!($t)))
            }
        }
    )*};
}
persist_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Persist for bool {
    fn encode(&self, out: &mut String) {
        out.push_str(if *self { "1\n" } else { "0\n" });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        match d.token()? {
            "1" => Ok(true),
            "0" => Ok(false),
            other => Err(format!("bad bool token {other:?}")),
        }
    }
}

impl Persist for f32 {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!("{:08x}\n", self.to_bits()));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        let tok = d.token()?;
        u32::from_str_radix(tok, 16)
            .map(f32::from_bits)
            .map_err(|e| format!("bad f32 bits {tok:?}: {e}"))
    }
}

impl Persist for f64 {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!("{:016x}\n", self.to_bits()));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        let tok = d.token()?;
        u64::from_str_radix(tok, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad f64 bits {tok:?}: {e}"))
    }
}

impl Persist for String {
    fn encode(&self, out: &mut String) {
        // Hex-of-UTF-8 with an `s` sentinel so the empty string still
        // yields a token and arbitrary content never splits.
        out.push('s');
        for b in self.as_bytes() {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        let tok = d.token()?;
        let hex = tok
            .strip_prefix('s')
            .ok_or_else(|| format!("bad string token {tok:?}"))?;
        if hex.len() % 2 != 0 {
            return Err(format!("odd-length string token {tok:?}"));
        }
        let bytes: Result<Vec<u8>, _> = (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
            .collect();
        let bytes = bytes.map_err(|e| format!("bad string token {tok:?}: {e}"))?;
        String::from_utf8(bytes).map_err(|e| format!("non-UTF-8 string token: {e}"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, out: &mut String) {
        match self {
            None => out.push_str("N\n"),
            Some(v) => {
                out.push_str("S\n");
                v.encode(out);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        match d.token()? {
            "N" => Ok(None),
            "S" => Ok(Some(T::decode(d)?)),
            other => Err(format!("bad option token {other:?}")),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, out: &mut String) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        let n = usize::decode(d)?;
        // Cap the pre-reservation so a corrupted length can't trigger a
        // huge allocation before element decoding fails.
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, out: &mut String) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl Persist for Weights {
    fn encode(&self, out: &mut String) {
        self.tensors.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(Weights {
            tensors: Vec::decode(d)?,
        })
    }
}

impl Persist for OptimizerState {
    fn encode(&self, out: &mut String) {
        match self {
            OptimizerState::Sgd { velocity } => {
                out.push_str("sgd\n");
                velocity.encode(out);
            }
            OptimizerState::Adam { t, m, v } => {
                out.push_str("adam\n");
                t.encode(out);
                m.encode(out);
                v.encode(out);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        match d.token()? {
            "sgd" => Ok(OptimizerState::Sgd {
                velocity: Vec::decode(d)?,
            }),
            "adam" => Ok(OptimizerState::Adam {
                t: u64::decode(d)?,
                m: Vec::decode(d)?,
                v: Vec::decode(d)?,
            }),
            other => Err(format!("unknown optimizer tag {other:?}")),
        }
    }
}

/// A complete training snapshot at an epoch boundary.
///
/// `T` is the trainer-specific payload (early-stopper state, best-weights
/// snapshot, partial summary) — anything implementing [`Persist`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<T> {
    /// Live model weights at the snapshot (the *current* epoch's weights,
    /// not the best-so-far — the best snapshot lives in the trainer
    /// payload).
    pub weights: Weights,
    /// Optimizer state (Adam moments + step count, SGD velocity).
    pub optimizer: OptimizerState,
    /// Completed epochs.
    pub epoch: usize,
    /// Optimization steps taken (also the stochastic-layer salt counter).
    pub step: u64,
    /// Fingerprint of the training configuration that produced this
    /// checkpoint; loaders reject a mismatch.
    pub config_fingerprint: u64,
    /// Trainer-specific state.
    pub trainer: T,
}

impl<T: Persist> Persist for Checkpoint<T> {
    fn encode(&self, out: &mut String) {
        self.weights.encode(out);
        self.optimizer.encode(out);
        self.epoch.encode(out);
        self.step.encode(out);
        self.config_fingerprint.encode(out);
        self.trainer.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, String> {
        Ok(Checkpoint {
            weights: Weights::decode(d)?,
            optimizer: OptimizerState::decode(d)?,
            epoch: usize::decode(d)?,
            step: u64::decode(d)?,
            config_fingerprint: u64::decode(d)?,
            trainer: T::decode(d)?,
        })
    }
}

/// Saves a checkpoint atomically (write-then-rename).
pub fn save<T: Persist>(path: &Path, ck: &Checkpoint<T>) -> Result<(), CheckpointError> {
    save_value(path, ck)
}

/// Loads and verifies a checkpoint written by [`save`].
pub fn load<T: Persist>(path: &Path) -> Result<Checkpoint<T>, CheckpointError> {
    load_value(path)
}

/// Encodes `value` into the checksummed envelope and writes it
/// atomically: the bytes go to a `<path>.tmp` sibling first and are
/// renamed over `path` only once fully written.
pub fn save_value<T: Persist>(path: &Path, value: &T) -> Result<(), CheckpointError> {
    let mut body = String::new();
    value.encode(&mut body);
    let header = format!(
        "{MAGIC} v{FORMAT_VERSION} fnv1a64={:016x} len={}\n",
        fnv1a64(body.as_bytes()),
        body.len()
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(body.as_bytes());

    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Format(format!("{} has no file name", path.display())))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads, verifies (magic, version, length, checksum) and decodes an
/// envelope written by [`save_value`].
pub fn load_value<T: Persist>(path: &Path) -> Result<T, CheckpointError> {
    let bytes = std::fs::read(path)?;
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CheckpointError::Format("missing header line".into()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| CheckpointError::Format("header is not UTF-8".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 4 || fields[0] != MAGIC {
        return Err(CheckpointError::Format(format!(
            "header {header:?} is not a {MAGIC} header"
        )));
    }
    let version: u32 = fields[1]
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad version field {:?}", fields[1])))?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let stored: u64 = fields[2]
        .strip_prefix("fnv1a64=")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad checksum field {:?}", fields[2])))?;
    let len: usize = fields[3]
        .strip_prefix("len=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad length field {:?}", fields[3])))?;

    let body = &bytes[nl + 1..];
    if body.len() != len {
        return Err(CheckpointError::Format(format!(
            "truncated body: header promises {len} bytes, file holds {}",
            body.len()
        )));
    }
    let computed = fnv1a64(body);
    if computed != stored {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    let body =
        std::str::from_utf8(body).map_err(|_| CheckpointError::Body("body is not UTF-8".into()))?;
    let mut d = Decoder::new(body);
    let value = T::decode(&mut d).map_err(CheckpointError::Body)?;
    if !d.is_exhausted() {
        return Err(CheckpointError::Body(
            "trailing tokens after the decoded value".into(),
        ));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::model::Sequential;
    use crate::optim::{Adam, Optimizer, Sgd};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nettensor_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_checkpoint() -> Checkpoint<Vec<f64>> {
        let net = Sequential::new(vec![Box::new(Linear::new(3, 2, 7))]);
        Checkpoint {
            weights: net.export_weights(),
            optimizer: Adam::new(0.001).export_state(),
            epoch: 4,
            step: 123,
            config_fingerprint: fnv1a64(b"cfg"),
            trainer: vec![0.25, -1.5],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let path = tmp("round_trip.ckpt");
        let ck = sample_checkpoint();
        save(&path, &ck).unwrap();
        let back: Checkpoint<Vec<f64>> = load(&path).unwrap();
        assert_eq!(back, ck);
        // Bit-exactness of the weights, not just approximate equality.
        for (a, b) in back.weights.tensors.iter().zip(&ck.weights.tensors) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        // Hex-bit encoding is exact even where decimal printing is not:
        // NaN payloads, infinities, signed zero, subnormals.
        let values = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1.5e-42];
        let mut body = String::new();
        values.encode(&mut body);
        let back = Vec::<f32>::decode(&mut Decoder::new(&body)).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strings_and_options_round_trip() {
        let value = (
            vec![
                Some("hello world\nwith whitespace".to_string()),
                None,
                Some(String::new()),
            ],
            42u64,
        );
        let mut body = String::new();
        value.encode(&mut body);
        let back = <(Vec<Option<String>>, u64)>::decode(&mut Decoder::new(&body)).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn sgd_state_round_trips() {
        let state = Sgd::with_momentum(0.1, 0.9).export_state();
        let mut body = String::new();
        state.encode(&mut body);
        assert_eq!(
            OptimizerState::decode(&mut Decoder::new(&body)).unwrap(),
            state
        );
    }

    #[test]
    fn save_leaves_no_tmp_file_behind() {
        let path = tmp("no_tmp.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        assert!(path.exists());
        assert!(!path.with_file_name("no_tmp.ckpt.tmp").exists());
    }

    #[test]
    fn corrupted_body_is_a_checksum_error() {
        let path = tmp("corrupt.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = if bytes[last] == b'0' { b'1' } else { b'0' };
        std::fs::write(&path, &bytes).unwrap();
        match load::<Vec<f64>>(&path) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_detected_before_parsing() {
        let path = tmp("truncated.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        match load::<Vec<f64>>(&path) {
            Err(CheckpointError::Format(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Format(truncated), got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_a_clean_error() {
        let path = tmp("version.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        std::fs::write(&path, text.replacen(" v1 ", " v999 ", 1)).unwrap();
        match load::<Vec<f64>>(&path) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_checkpoint_file_is_a_format_error() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"{\"this\": \"is just json\"}\nmore").unwrap();
        assert!(matches!(
            load::<Vec<f64>>(&path),
            Err(CheckpointError::Format(_))
        ));
        let missing = tmp("does_not_exist.ckpt");
        assert!(matches!(
            load::<Vec<f64>>(&missing),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn wrong_payload_type_is_a_body_error() {
        // A checkpoint decoded with the wrong trainer payload type must
        // fail (leftover or missing tokens), not silently yield garbage.
        let path = tmp("wrong_type.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        assert!(matches!(
            load::<Checkpoint<(u64, Vec<String>)>>(&path),
            Err(CheckpointError::Body(_))
        ));
    }

    #[test]
    fn fnv1a64_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        assert_ne!(
            fingerprint_config(&(0.001f32, 32usize)),
            fingerprint_config(&(0.01f32, 32usize))
        );
        assert_eq!(
            fingerprint_config(&(0.001f32, 32usize)),
            fingerprint_config(&(0.001f32, 32usize))
        );
    }
}
