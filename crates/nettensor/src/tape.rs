//! Per-call activation tapes and caller-owned gradient stores.
//!
//! The layer API splits a network's state into two halves:
//!
//! * **Parameters** live inside each layer and are only written by
//!   optimizers (`&mut` access through [`crate::model::Sequential`]).
//! * **Activation state** — cached inputs, dropout masks, pooling argmax
//!   indices, batch-norm statistics — lives in a [`Tape`] owned by the
//!   caller of `forward`, and **parameter gradients** accumulate into a
//!   caller-owned [`GradStore`].
//!
//! Because no layer mutates itself during forward/backward, a model is
//! `Sync`: several batch shards can run concurrently against the same
//! parameters, each with a private tape (see [`crate::engine`]).
//!
//! Every layer pushes exactly one [`TapeEntry`] per forward call, so entry
//! `i` of a tape written by `Sequential::forward` belongs to layer `i`.

use crate::tensor::Tensor;

/// One layer's saved activation state from a single forward call.
#[derive(Debug, Clone)]
pub enum TapeEntry {
    /// Nothing recorded (identity layers, eval-mode batch norm).
    Empty,
    /// The layer input (convolutions, linear).
    Input(Tensor),
    /// Sign mask (ReLU).
    Mask(Vec<bool>),
    /// Multiplicative mask (dropout). An empty vec means the pass was an
    /// identity (eval mode or `p == 0`).
    ScaleMask(Vec<f32>),
    /// Flat input index of each output cell's maximum, plus the input
    /// shape for the backward scatter (max pooling).
    Argmax {
        /// Winning flat input index per output element.
        argmax: Vec<usize>,
        /// Shape of the forward input.
        input_shape: Vec<usize>,
    },
    /// The forward input shape (flatten).
    Shape(Vec<usize>),
    /// The layer output (tanh, sigmoid — their derivatives are functions
    /// of the output).
    Output(Tensor),
    /// Batch-norm training statistics. `mean`/`var` feed the deferred
    /// running-statistics update applied by `commit`, never the backward
    /// pass itself.
    BatchNorm {
        /// Standardized activations `x̂`, `[batch × features]` flat.
        x_hat: Vec<f32>,
        /// Per-feature `1/√(σ² + ε)`.
        inv_std: Vec<f32>,
        /// Batch size of the forward call.
        batch: usize,
        /// Per-feature batch mean.
        mean: Vec<f32>,
        /// Per-feature batch variance (biased).
        var: Vec<f32>,
    },
}

/// Activation state of one forward pass: one [`TapeEntry`] per layer, in
/// layer order, plus the context stateless layers need to stay
/// deterministic under batch sharding.
#[derive(Debug, Clone)]
pub struct Tape {
    /// One entry per layer, pushed in forward order.
    pub entries: Vec<TapeEntry>,
    /// Step-level salt mixed into hash-derived randomness (dropout
    /// masks). Trainers advance it once per optimization step so masks
    /// differ between steps but not between workers.
    pub salt: u64,
    /// Global row index of this tape's first batch row. A shard covering
    /// rows `[o, o+k)` of the full mini-batch carries `sample_offset = o`,
    /// which keeps per-element dropout masks identical to an unsharded
    /// pass over the same rows.
    pub sample_offset: usize,
}

impl Tape {
    /// An empty tape with neutral context (salt 0, offset 0).
    pub fn new() -> Tape {
        Tape::with_context(0, 0)
    }

    /// An empty tape carrying a step salt and a shard's global row offset.
    pub fn with_context(salt: u64, sample_offset: usize) -> Tape {
        Tape {
            entries: Vec::new(),
            salt,
            sample_offset,
        }
    }

    /// Records one layer's activation state.
    pub fn push(&mut self, entry: TapeEntry) {
        self.entries.push(entry);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tape holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

/// Caller-owned parameter-gradient accumulator: one zero-initialized slot
/// per parameter tensor of a model, **frozen layers included**, in layer
/// order. Keying by global slot keeps optimizer state valid across
/// `freeze_prefix` changes and makes the data-parallel reduction a plain
/// slot-wise ordered sum.
#[derive(Debug, Clone)]
pub struct GradStore {
    slots: Vec<Tensor>,
}

impl GradStore {
    /// A store with one zero slot per tensor in `params`.
    pub fn zeros_like(params: &[&Tensor]) -> GradStore {
        GradStore {
            slots: params.iter().map(|p| Tensor::zeros(&p.shape)).collect(),
        }
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All slots, in layer order.
    pub fn slots(&self) -> &[Tensor] {
        &self.slots
    }

    /// Mutable access to all slots.
    pub fn slots_mut(&mut self) -> &mut [Tensor] {
        &mut self.slots
    }

    /// Zeroes every slot (the `zero_grad` of the tape API).
    pub fn zero(&mut self) {
        for s in &mut self.slots {
            s.fill_zero();
        }
    }

    /// Slot-wise `self += other`.
    ///
    /// This is the data-parallel reduction primitive: the engine calls it
    /// once per shard **in fixed shard order**, so the f32 summation order
    /// is independent of how shards were distributed over workers.
    pub fn add_assign(&mut self, other: &GradStore) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "grad store slot count mismatch"
        );
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            a.add_scaled(b, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_records_in_order() {
        let mut tape = Tape::with_context(7, 3);
        tape.push(TapeEntry::Empty);
        tape.push(TapeEntry::Shape(vec![2, 2]));
        assert_eq!(tape.len(), 2);
        assert_eq!(tape.salt, 7);
        assert_eq!(tape.sample_offset, 3);
        assert!(matches!(tape.entries[1], TapeEntry::Shape(_)));
    }

    #[test]
    fn grad_store_shapes_follow_params() {
        let w = Tensor::kaiming_uniform(&[3, 4], 3, 0);
        let b = Tensor::zeros(&[4]);
        let store = GradStore::zeros_like(&[&w, &b]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.slots()[0].shape, vec![3, 4]);
        assert_eq!(store.slots()[1].shape, vec![4]);
        assert!(store.slots()[0].data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ordered_reduce_accumulates() {
        let w = Tensor::zeros(&[2]);
        let mut a = GradStore::zeros_like(&[&w]);
        let mut b = GradStore::zeros_like(&[&w]);
        a.slots_mut()[0].data = vec![1.0, 2.0];
        b.slots_mut()[0].data = vec![10.0, 20.0];
        a.add_assign(&b);
        assert_eq!(a.slots()[0].data, vec![11.0, 22.0]);
        a.zero();
        assert_eq!(a.slots()[0].data, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "slot count mismatch")]
    fn reduce_rejects_mismatched_stores() {
        let w = Tensor::zeros(&[2]);
        let mut a = GradStore::zeros_like(&[&w]);
        let b = GradStore::zeros_like(&[&w, &w]);
        a.add_assign(&b);
    }
}
