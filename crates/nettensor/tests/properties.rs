//! Property-based tests of the tensor/NN substrate.

use nettensor::layers::{Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU};
use nettensor::model::Sequential;
use nettensor::tensor::Tensor;
use proptest::prelude::*;

fn arb_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-3.0f32..3.0, n).prop_map(move |data| Tensor::new(&shape, data))
}

/// A small conv net exercising every parameter-free and parametric layer
/// the paper's architectures use.
fn small_net(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Conv2d::new(1, 2, 3, seed)),
        Box::new(ReLU::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Dropout::new(0.25, seed)),
        Box::new(Linear::new(2 * 3 * 3, 3, seed + 1)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(vec![3, 4]),
        b in arb_tensor(vec![4, 2]),
        c in arb_tensor(vec![4, 2]),
    ) {
        // a·(b + c) == a·b + a·c (within f32 tolerance).
        let mut bc = b.clone();
        bc.add_scaled(&c, 1.0);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_scaled(&a.matmul(&c), 1.0);
        for (l, r) in left.data.iter().zip(&right.data) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_is_involutive(a in arb_tensor(vec![5, 7])) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn matmul_transpose_identity(
        a in arb_tensor(vec![3, 4]),
        b in arb_tensor(vec![4, 2]),
    ) {
        // (a·b)ᵀ == bᵀ·aᵀ
        let left = a.matmul(&b).transposed();
        let right = b.transposed().matmul(&a.transposed());
        for (l, r) in left.data.iter().zip(&right.data) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(x in arb_tensor(vec![2, 16])) {
        let relu = ReLU::new();
        let once = relu.forward(&x, false, &mut Tape::new());
        prop_assert!(once.data.iter().all(|&v| v >= 0.0));
        let twice = relu.forward(&once, false, &mut Tape::new());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn maxpool_output_bounded_by_input_max(x in arb_tensor(vec![1, 2, 6, 6])) {
        let pool = MaxPool2d::new(2);
        let out = pool.forward(&x, false, &mut Tape::new());
        let in_max = x.data.iter().copied().fold(f32::MIN, f32::max);
        let out_max = out.data.iter().copied().fold(f32::MIN, f32::max);
        prop_assert!(out_max <= in_max + 1e-6);
    }

    #[test]
    fn flatten_preserves_every_value(x in arb_tensor(vec![2, 3, 4, 4])) {
        let flatten = Flatten::new();
        let out = flatten.forward(&x, false, &mut Tape::new());
        prop_assert_eq!(out.shape, vec![2usize, 48]);
        prop_assert_eq!(out.data, x.data);
    }

    #[test]
    fn cross_entropy_is_positive_and_grad_rows_sum_to_zero(
        logits in arb_tensor(vec![4, 5]),
        labels in prop::collection::vec(0usize..5, 4),
    ) {
        let (loss, grad) = cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for i in 0..4 {
            let s: f32 = grad.data[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} grad sum {s}");
        }
    }

    #[test]
    fn accuracy_is_a_probability(
        logits in arb_tensor(vec![6, 3]),
        labels in prop::collection::vec(0usize..3, 6),
    ) {
        let acc = accuracy(&logits, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn mse_zero_iff_equal(x in arb_tensor(vec![8])) {
        let (loss, grad) = mse(&x, &x);
        prop_assert_eq!(loss, 0.0);
        prop_assert!(grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn ntxent_is_finite_and_grad_shaped(
        z in arb_tensor(vec![8, 6]),
        temp in 0.05f32..2.0,
    ) {
        let out = NtXent::new(temp).eval(&z);
        prop_assert!(out.loss.is_finite());
        prop_assert!((0.0..=1.0).contains(&out.top1_accuracy));
        prop_assert!((0.0..=1.0).contains(&out.top5_accuracy));
        prop_assert!(out.top1_accuracy <= out.top5_accuracy);
        prop_assert_eq!(out.grad.shape, z.shape);
        prop_assert!(out.grad.data.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn linear_layer_is_affine(
        x in arb_tensor(vec![1, 4]),
        y in arb_tensor(vec![1, 4]),
        seed in any::<u64>(),
    ) {
        // f(x + y) - f(0) == (f(x) - f(0)) + (f(y) - f(0)).
        let lin = Linear::new(4, 3, seed);
        let zero = Tensor::zeros(&[1, 4]);
        let f0 = lin.forward(&zero, false, &mut Tape::new());
        let mut xy = x.clone();
        xy.add_scaled(&y, 1.0);
        let fxy = lin.forward(&xy, false, &mut Tape::new());
        let fx = lin.forward(&x, false, &mut Tape::new());
        let fy = lin.forward(&y, false, &mut Tape::new());
        for j in 0..3 {
            let left = fxy.data[j] - f0.data[j];
            let right = (fx.data[j] - f0.data[j]) + (fy.data[j] - f0.data[j]);
            prop_assert!((left - right).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_is_translation_equivariant_in_the_interior(
        seed in any::<u64>(),
        row in 1usize..4,
        col in 1usize..4,
    ) {
        // A single bright pixel moved by (1,0) moves the conv response by
        // (1,0) in the valid interior.
        let conv = Conv2d::new(1, 1, 3, seed);
        let mut a = Tensor::zeros(&[1, 1, 8, 8]);
        a.data[row * 8 + col] = 1.0;
        let mut b = Tensor::zeros(&[1, 1, 8, 8]);
        b.data[(row + 1) * 8 + col] = 1.0;
        let fa = conv.forward(&a, false, &mut Tape::new());
        let fb = conv.forward(&b, false, &mut Tape::new());
        // Compare overlapping interior rows: fb row r equals fa row r-1.
        let (oh, ow) = (6usize, 6usize);
        for r in 1..oh {
            for c in 0..ow {
                let va = fa.data[(r - 1) * ow + c];
                let vb = fb.data[r * ow + c];
                prop_assert!((va - vb).abs() < 1e-5);
            }
        }
    }

    /// The tentpole determinism contract: for a fixed shard size, the
    /// sharded forward/backward is bitwise identical for every worker
    /// count, across random batch sizes, salts, and seeds — training-mode
    /// dropout included.
    #[test]
    fn sharded_gradients_match_sequential(
        batch in 1usize..12,
        workers in 2usize..5,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let net = small_net(seed % 1000);
        let x = Tensor::kaiming_uniform(&[batch, 1, 8, 8], 1, seed.wrapping_add(1));
        let labels: Vec<usize> = (0..batch).map(|i| i % 3).collect();

        let run = |engine: &BatchEngine| {
            let (logits, tapes) = engine.forward(&net, &x, true, salt);
            let (loss, grad) = cross_entropy(&logits, &labels);
            let mut grads = net.grad_store();
            let g_in = engine.backward(&net, &tapes, &grad, &mut grads);
            (logits, loss, grads, g_in)
        };

        let (logits_1, loss_1, grads_1, gin_1) = run(&BatchEngine::new(1));
        let (logits_n, loss_n, grads_n, gin_n) = run(&BatchEngine::new(workers));

        prop_assert_eq!(logits_1.data, logits_n.data);
        prop_assert_eq!(loss_1.to_bits(), loss_n.to_bits(), "loss must be bit-identical");
        prop_assert_eq!(gin_1.data, gin_n.data);
        for (a, b) in grads_1.slots().iter().zip(grads_n.slots()) {
            prop_assert_eq!(&a.data, &b.data, "parameter gradients must be bit-identical");
        }
    }
}
