//! Property-based tests of the tensor/NN substrate.

use nettensor::engine::BatchEngine;
use nettensor::layers::{Conv2d, Dropout, Flatten, Layer, Linear, MaxPool2d, ReLU};
use nettensor::model::Sequential;
use nettensor::tape::Tape;
use nettensor::tensor::Tensor;
use proptest::prelude::*;

fn arb_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-3.0f32..3.0, n).prop_map(move |data| Tensor::new(&shape, data))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `[n, c, h, w]`-shaped tensor with ~`density` of its cells non-zero.
/// Values have magnitude in [0.5, 2.5] — far from underflow against
/// Kaiming-scale weights, so products of two non-zeros are never `±0.0`
/// and the sparse kernels' dropped-addend set is exactly the zero cells.
fn sparse_tensor(shape: &[usize], density: f64, signed: bool, seed: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data = (0..len)
        .map(|i| {
            let h = splitmix64(seed ^ (i as u64).wrapping_mul(0xD129_0EB2_6B97_A409));
            if (h % 10_000) as f64 >= density * 10_000.0 {
                return 0.0;
            }
            let mag = 0.5 + 2.0 * ((h >> 16) % 1024) as f32 / 1024.0;
            if signed && (h >> 32) & 1 == 1 {
                -mag
            } else {
                mag
            }
        })
        .collect();
    Tensor::new(shape, data)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data.iter().map(|v| v.to_bits()).collect()
}

/// The dense-vs-sparse bit-identity contract for one Conv2d
/// configuration: forced-sparse (threshold 1.1), forced-dense (0.0) and
/// default-dispatch layers must agree bit-for-bit on the train forward,
/// the eval forward, both parameter gradients and the input gradient.
#[allow(clippy::too_many_arguments)]
fn assert_conv_bit_identity(
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    batch: usize,
    hw: usize,
    in_density: f64,
    g_density: f64,
    seed: u64,
) {
    let convs: Vec<Conv2d> = [1.1f32, 0.0, nettensor::sparse::DEFAULT_SPARSITY_THRESHOLD]
        .iter()
        .map(|&thr| {
            let mut conv = Conv2d::with_stride(in_c, out_c, kernel, stride, seed);
            conv.set_sparsity_threshold(thr);
            conv
        })
        .collect();
    let x = sparse_tensor(&[batch, in_c, hw, hw], in_density, true, seed ^ 0xA5A5);

    let mut results = Vec::new();
    for conv in &convs {
        let mut tape = Tape::new();
        let out = conv.forward(&x, true, &mut tape);
        let eval = conv.forward_eval(&x);
        let g = sparse_tensor(&out.shape, g_density, true, seed ^ 0x5A5A);
        let mut grads: Vec<Tensor> = conv
            .params()
            .iter()
            .map(|p| Tensor::zeros(&p.shape))
            .collect();
        let grad_in = conv.backward(&tape.entries[0], &g, &mut grads);
        results.push((
            bits(&out),
            bits(&eval),
            bits(&grads[0]),
            bits(&grads[1]),
            bits(&grad_in),
        ));
    }

    let label = format!(
        "k{kernel} s{stride} b{batch} {hw}x{hw} in_density {in_density} g_density {g_density}"
    );
    let (fwd, eval, gw, gb, gin) = &results[0];
    assert_eq!(fwd, eval, "train vs eval forward diverge [{label}]");
    for (which, r) in results.iter().enumerate().skip(1) {
        assert_eq!(fwd, &r.0, "forward bits diverge, conv {which} [{label}]");
        assert_eq!(eval, &r.1, "eval bits diverge, conv {which} [{label}]");
        assert_eq!(gw, &r.2, "weight-grad bits diverge, conv {which} [{label}]");
        assert_eq!(gb, &r.3, "bias-grad bits diverge, conv {which} [{label}]");
        assert_eq!(gin, &r.4, "input-grad bits diverge, conv {which} [{label}]");
    }
}

/// Deterministic sweep over densities 0–100 %, stride 1 and strided,
/// batches > 1 — runs in every environment (the proptest variants below
/// rerun the same contract under randomized inputs in CI).
#[test]
fn conv_dense_vs_sparse_bit_identity_sweep() {
    // (in_c, out_c, kernel, stride, hw): LeNet-ish stride-1 stages and
    // the full-flowpic strided first stage, scaled down.
    let shapes = [
        (1usize, 3usize, 3usize, 1usize, 9usize),
        (2, 2, 5, 1, 12),
        (1, 4, 10, 5, 30),
        (2, 3, 3, 2, 9),
    ];
    for (ci, &(in_c, out_c, kernel, stride, hw)) in shapes.iter().enumerate() {
        for &batch in &[1usize, 3] {
            for &in_density in &[0.0f64, 0.03, 0.4, 1.0] {
                for &g_density in &[0.05f64, 1.0] {
                    let seed = splitmix64(ci as u64 ^ (batch as u64) << 8)
                        ^ (in_density * 64.0) as u64
                        ^ ((g_density * 64.0) as u64) << 4;
                    assert_conv_bit_identity(
                        in_c, out_c, kernel, stride, batch, hw, in_density, g_density, seed,
                    );
                }
            }
        }
    }
}

/// MaxPool2d's sparse eval path must match the dense scan bit-for-bit
/// on its whole admissible domain (non-negative inputs), including
/// trailing rows/columns that don't fill a window.
#[test]
fn pool_dense_vs_sparse_bit_identity_sweep() {
    for &(hw, k) in &[(8usize, 2usize), (9, 2), (7, 3), (6, 6)] {
        for &batch in &[1usize, 2] {
            for &density in &[0.0f64, 0.05, 0.5, 1.0] {
                let x = sparse_tensor(
                    &[batch, 2, hw, hw],
                    density,
                    false,
                    splitmix64(hw as u64 ^ (k as u64) << 6 ^ (density * 100.0) as u64),
                );
                let pool = MaxPool2d::new(k);
                let mut dense = MaxPool2d::new(k);
                dense.set_sparsity_threshold(0.0);
                let label = format!("{hw}x{hw} k{k} b{batch} density {density}");
                assert_eq!(
                    bits(&pool.forward_eval(&x)),
                    bits(&dense.forward_eval(&x)),
                    "pool eval bits diverge [{label}]"
                );
                assert_eq!(
                    bits(&pool.forward_eval(&x)),
                    bits(&pool.forward(&x, false, &mut Tape::new())),
                    "pool eval vs train forward diverge [{label}]"
                );
            }
        }
    }
}

/// End-to-end through `Sequential::predict` and a sharded
/// `BatchEngine::predict`: the default sparse dispatch must be invisible
/// — bit-identical to a model forced fully dense, at any worker count.
#[test]
fn sparse_dispatch_is_invisible_through_model_and_engine() {
    let net = small_net(11);
    let mut dense_net = small_net(11);
    dense_net.set_sparsity_threshold(0.0);
    // Flowpic-grade sparse batch: positive counts on a zero background.
    let x = sparse_tensor(&[6, 1, 8, 8], 0.04, false, 99);

    let reference = dense_net.predict(&x);
    assert_eq!(bits(&net.predict(&x)), bits(&reference));
    for workers in [1, 3] {
        let out = BatchEngine::new(workers).predict(&net, &x);
        assert_eq!(
            bits(&out),
            bits(&reference),
            "sharded sparse predict diverges at {workers} workers"
        );
    }
}

/// A small conv net exercising every parameter-free and parametric layer
/// the paper's architectures use.
fn small_net(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Conv2d::new(1, 2, 3, seed)),
        Box::new(ReLU::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Dropout::new(0.25, seed)),
        Box::new(Linear::new(2 * 3 * 3, 3, seed + 1)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(vec![3, 4]),
        b in arb_tensor(vec![4, 2]),
        c in arb_tensor(vec![4, 2]),
    ) {
        // a·(b + c) == a·b + a·c (within f32 tolerance).
        let mut bc = b.clone();
        bc.add_scaled(&c, 1.0);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_scaled(&a.matmul(&c), 1.0);
        for (l, r) in left.data.iter().zip(&right.data) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_is_involutive(a in arb_tensor(vec![5, 7])) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn matmul_transpose_identity(
        a in arb_tensor(vec![3, 4]),
        b in arb_tensor(vec![4, 2]),
    ) {
        // (a·b)ᵀ == bᵀ·aᵀ
        let left = a.matmul(&b).transposed();
        let right = b.transposed().matmul(&a.transposed());
        for (l, r) in left.data.iter().zip(&right.data) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(x in arb_tensor(vec![2, 16])) {
        let relu = ReLU::new();
        let once = relu.forward(&x, false, &mut Tape::new());
        prop_assert!(once.data.iter().all(|&v| v >= 0.0));
        let twice = relu.forward(&once, false, &mut Tape::new());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn maxpool_output_bounded_by_input_max(x in arb_tensor(vec![1, 2, 6, 6])) {
        let pool = MaxPool2d::new(2);
        let out = pool.forward(&x, false, &mut Tape::new());
        let in_max = x.data.iter().copied().fold(f32::MIN, f32::max);
        let out_max = out.data.iter().copied().fold(f32::MIN, f32::max);
        prop_assert!(out_max <= in_max + 1e-6);
    }

    #[test]
    fn flatten_preserves_every_value(x in arb_tensor(vec![2, 3, 4, 4])) {
        let flatten = Flatten::new();
        let out = flatten.forward(&x, false, &mut Tape::new());
        prop_assert_eq!(out.shape, vec![2usize, 48]);
        prop_assert_eq!(out.data, x.data);
    }

    #[test]
    fn cross_entropy_is_positive_and_grad_rows_sum_to_zero(
        logits in arb_tensor(vec![4, 5]),
        labels in prop::collection::vec(0usize..5, 4),
    ) {
        let (loss, grad) = cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for i in 0..4 {
            let s: f32 = grad.data[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} grad sum {s}");
        }
    }

    #[test]
    fn accuracy_is_a_probability(
        logits in arb_tensor(vec![6, 3]),
        labels in prop::collection::vec(0usize..3, 6),
    ) {
        let acc = accuracy(&logits, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn mse_zero_iff_equal(x in arb_tensor(vec![8])) {
        let (loss, grad) = mse(&x, &x);
        prop_assert_eq!(loss, 0.0);
        prop_assert!(grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn ntxent_is_finite_and_grad_shaped(
        z in arb_tensor(vec![8, 6]),
        temp in 0.05f32..2.0,
    ) {
        let out = NtXent::new(temp).eval(&z);
        prop_assert!(out.loss.is_finite());
        prop_assert!((0.0..=1.0).contains(&out.top1_accuracy));
        prop_assert!((0.0..=1.0).contains(&out.top5_accuracy));
        prop_assert!(out.top1_accuracy <= out.top5_accuracy);
        prop_assert_eq!(out.grad.shape, z.shape);
        prop_assert!(out.grad.data.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn linear_layer_is_affine(
        x in arb_tensor(vec![1, 4]),
        y in arb_tensor(vec![1, 4]),
        seed in any::<u64>(),
    ) {
        // f(x + y) - f(0) == (f(x) - f(0)) + (f(y) - f(0)).
        let lin = Linear::new(4, 3, seed);
        let zero = Tensor::zeros(&[1, 4]);
        let f0 = lin.forward(&zero, false, &mut Tape::new());
        let mut xy = x.clone();
        xy.add_scaled(&y, 1.0);
        let fxy = lin.forward(&xy, false, &mut Tape::new());
        let fx = lin.forward(&x, false, &mut Tape::new());
        let fy = lin.forward(&y, false, &mut Tape::new());
        for j in 0..3 {
            let left = fxy.data[j] - f0.data[j];
            let right = (fx.data[j] - f0.data[j]) + (fy.data[j] - f0.data[j]);
            prop_assert!((left - right).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_is_translation_equivariant_in_the_interior(
        seed in any::<u64>(),
        row in 1usize..4,
        col in 1usize..4,
    ) {
        // A single bright pixel moved by (1,0) moves the conv response by
        // (1,0) in the valid interior.
        let conv = Conv2d::new(1, 1, 3, seed);
        let mut a = Tensor::zeros(&[1, 1, 8, 8]);
        a.data[row * 8 + col] = 1.0;
        let mut b = Tensor::zeros(&[1, 1, 8, 8]);
        b.data[(row + 1) * 8 + col] = 1.0;
        let fa = conv.forward(&a, false, &mut Tape::new());
        let fb = conv.forward(&b, false, &mut Tape::new());
        // Compare overlapping interior rows: fb row r equals fa row r-1.
        let (oh, ow) = (6usize, 6usize);
        for r in 1..oh {
            for c in 0..ow {
                let va = fa.data[(r - 1) * ow + c];
                let vb = fb.data[r * ow + c];
                prop_assert!((va - vb).abs() < 1e-5);
            }
        }
    }

    /// The tentpole determinism contract: for a fixed shard size, the
    /// sharded forward/backward is bitwise identical for every worker
    /// count, across random batch sizes, salts, and seeds — training-mode
    /// dropout included.
    #[test]
    fn sharded_gradients_match_sequential(
        batch in 1usize..12,
        workers in 2usize..5,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let net = small_net(seed % 1000);
        let x = Tensor::kaiming_uniform(&[batch, 1, 8, 8], 1, seed.wrapping_add(1));
        let labels: Vec<usize> = (0..batch).map(|i| i % 3).collect();

        let run = |engine: &BatchEngine| {
            let (logits, tapes) = engine.forward(&net, &x, true, salt);
            let (loss, grad) = cross_entropy(&logits, &labels);
            let mut grads = net.grad_store();
            let g_in = engine.backward(&net, &tapes, &grad, &mut grads);
            (logits, loss, grads, g_in)
        };

        let (logits_1, loss_1, grads_1, gin_1) = run(&BatchEngine::new(1));
        let (logits_n, loss_n, grads_n, gin_n) = run(&BatchEngine::new(workers));

        prop_assert_eq!(logits_1.data, logits_n.data);
        prop_assert_eq!(loss_1.to_bits(), loss_n.to_bits(), "loss must be bit-identical");
        prop_assert_eq!(gin_1.data, gin_n.data);
        for (a, b) in grads_1.slots().iter().zip(grads_n.slots()) {
            prop_assert_eq!(&a.data, &b.data, "parameter gradients must be bit-identical");
        }
    }

    /// Randomized restatement of the dense-vs-sparse bit-identity
    /// contract: any density from empty to fully dense, stride 1 and
    /// strided, batch > 1, train and eval forwards plus all gradients.
    #[test]
    fn conv_sparse_kernels_bit_identical_randomized(
        in_density in 0.0f64..=1.0,
        g_density in 0.0f64..=1.0,
        batch in 1usize..4,
        strided in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (kernel, stride, hw) = if strided { (5, 5, 17) } else { (3, 1, 9) };
        assert_conv_bit_identity(1, 3, kernel, stride, batch, hw, in_density, g_density, seed);
    }

    /// Same contract for the pooling eval fast path, over its admissible
    /// (non-negative) input domain.
    #[test]
    fn pool_sparse_eval_bit_identical_randomized(
        density in 0.0f64..=1.0,
        batch in 1usize..4,
        k in 2usize..4,
        hw in 6usize..10,
        seed in any::<u64>(),
    ) {
        let x = sparse_tensor(&[batch, 2, hw, hw], density, false, seed);
        let pool = MaxPool2d::new(k);
        let mut dense = MaxPool2d::new(k);
        dense.set_sparsity_threshold(0.0);
        prop_assert_eq!(bits(&pool.forward_eval(&x)), bits(&dense.forward_eval(&x)));
        prop_assert_eq!(
            bits(&pool.forward_eval(&x)),
            bits(&pool.forward(&x, false, &mut Tape::new()))
        );
    }
}
